package relocate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// ErrPortStalled is the typed cause surfaced when the stall watchdog fires:
// the configuration port failed to harvest an in-flight stream within
// StallTimeout. It feeds the Retry delegate like any transport fault.
var ErrPortStalled = errors.New("relocate: configuration port stalled")

// FrameTool turns logical configuration edits (cell configs, PIP bits, pad
// bits) into partial-bitstream frame writes delivered through a
// configuration port. It maintains the shadow copy the paper's tool keeps
// for failure recovery, and it is the ONLY mutation path the relocation
// engine uses — everything the engine does is real partial reconfiguration.
//
// Frame writes are staged write-through: the device sees each frame the
// moment it is staged (rewriting identical bits is glitch-free, so the later
// port delivery of the same data is harmless), while the packet stream is
// coalesced — one sync/CRC-bracketed partial bitstream per Apply, or per
// whole batch when the caller brackets several operations with
// BeginBatch/EndBatch. A frame staged twice in one batch streams once, with
// its final content.
type FrameTool struct {
	dev    *fabric.Device
	port   bitstream.Port
	shadow *bitstream.Shadow

	// VerifyHook, when set, is invoked after every frame write (the
	// harness re-settles the simulator and checks for glitches there).
	// Setting it disables write coalescing: every frame streams on its
	// own so the hook observes the same per-frame sequence the paper's
	// cautious tool produced.
	VerifyHook func() error
	// ReadbackVerify reads every written frame back through the port and
	// compares — the cautious mode of the paper's tool. It roughly doubles
	// the Boundary-Scan traffic per relocation (see the ablation bench).
	// Like VerifyHook it forces per-frame streaming.
	ReadbackVerify bool

	// Serial forces synchronous delivery even on an AsyncPort — the
	// pipelined/serial bit-identity property tests and ablations use it.
	Serial bool

	frames  int
	genSeen uint64

	batchDepth int
	// pending is the set of frames staged but not yet streamed; content is
	// not kept here — Flush reads each frame from the shadow, which always
	// holds the latest staged (and designer-reconciled) data.
	pending    []fabric.FrameAddr
	pendingSet map[fabric.FrameAddr]bool

	touched  []fabric.FrameAddr
	touchSet map[fabric.FrameAddr]bool

	// async is the port's background-delivery interface (nil when the port
	// cannot stream). streamingSet tracks every frame of every UNDELIVERED
	// burst: a new write targeting one of them must first drain the queue,
	// because on a real part the in-flight stream and the new write would
	// race on the configuration port. streamBursts holds the per-burst
	// frame lists in enqueue order; finished bursts are pruned lazily
	// against the port's completed-burst counter, so a frame stops gating
	// the moment its burst has fully shifted out — no blocking await
	// needed. A frame appears in at most one unpruned burst: staging it
	// again while its burst is live is exactly what the gate serialises.
	async        bitstream.AsyncPort
	streamBursts [][]fabric.FrameAddr
	burstsDone   uint64
	streamingSet map[fabric.FrameAddr]bool

	// Retry, when set, is the transport fault-tolerance delegate: every
	// stream error surfacing at AwaitStream is handed to it together with
	// the unharvested frame set, and a nil return absorbs the fault. The
	// run-time manager's re-delivery ladder hangs here — AwaitStream is the
	// single point transport faults of the batched pipeline surface, whether
	// at an operation's harvest, the stage gate's serial drain, or the
	// engine's disjointness fallback. The delegate must not call back into
	// AwaitStream (it re-delivers through the port directly).
	Retry func(cause error, addrs []fabric.FrameAddr) error
	// StallTimeout, when positive, arms a watchdog on every harvest: if the
	// port's AwaitStream has not returned within the deadline the harvest
	// fails with ErrPortStalled (wrapped), which feeds the Retry delegate
	// like any other transport fault. The abandoned await keeps draining in
	// its goroutine; a later harvest (or HarvestPending) reaps it.
	StallTimeout time.Duration
	// awaitCh holds the result channel of an abandoned watchdog await: the
	// goroutine blocked in the port's AwaitStream when a previous harvest
	// timed out. The next harvest re-selects on it instead of spawning a
	// second awaiter (the port serializes awaits on one condition variable,
	// but two awaiters would race to consume the sticky error).
	awaitCh chan error
	// unharvested accumulates the distinct frames of every burst enqueued
	// since the last clean AwaitStream — the conservative re-delivery
	// superset: the drain counts failed bursts completed, so a sticky
	// stream error cannot name the burst it belongs to, but every burst
	// with an unconfirmed outcome is in this set. Under write-through
	// staging, re-sending the whole set from the shadow is correct (an
	// already-delivered frame gets a glitch-free identical rewrite).
	unharvested    []fabric.FrameAddr
	unharvestedSet map[fabric.FrameAddr]bool

	// quarantined frames are condemned configuration memory: staged writes
	// to them still update the shadow and the device model (the host view
	// stays coherent), but Flush silently drops them from port delivery and
	// the cautious readback mode skips them — nothing live may depend on a
	// quarantined frame (the area manager's mask guarantees that).
	quarantined map[fabric.FrameAddr]bool

	// Delta baselines for compressed delivery. lastSent holds, per frame,
	// the content most recently handed to the port (captured lazily from the
	// pre-staging shadow on a frame's first-ever stage, so the initial
	// baseline is what the fabric held at power-up); Flush diffs each
	// delivery against it. confirmed trails lastSent: it only advances when
	// a delivery's outcome is confirmed (a clean harvest, a synchronous
	// write, a designer-path reconciliation), and it is the baseline the
	// facade's re-delivery ladder diffs against — a failed burst's frames
	// genuinely re-ship their changed runs. Both maps alias shadow slices
	// (the shadow replaces slices wholesale, never mutates in place), and a
	// stale entry is always safe: under write-through staging a too-old
	// baseline only enlarges the shipped delta.
	lastSent  map[fabric.FrameAddr][]uint32
	confirmed map[fabric.FrameAddr][]uint32

	sink ViewSink

	// barrier, when set, observes the flush ordering: PreDeliver fires
	// after the frames of a flush (or a designer-path reconciliation) are
	// known but before their content is delivered through the port, and a
	// PreDeliver error aborts the delivery. The run-time manager's journal
	// hangs here — undo records must be durable before the device-visible
	// write they cover.
	barrier DeliveryBarrier
}

// DeliveryBarrier observes the points at which frames become part of the
// delivered configuration. PreDeliver is called with the frame set of one
// delivery before any of it reaches the port; returning an error aborts the
// delivery (nothing is streamed). Delivered is called with the delivered
// updates — for an async port at enqueue time, when the burst's content is
// fixed. The updates' data slices are owned by the shadow; observers must
// not retain or mutate them.
type DeliveryBarrier interface {
	PreDeliver(addrs []fabric.FrameAddr) error
	Delivered(updates []bitstream.FrameUpdate)
}

// SetBarrier attaches the flush-ordering barrier (nil detaches).
func (ft *FrameTool) SetBarrier(b DeliveryBarrier) { ft.barrier = b }

// ViewSink receives logical-level change notifications from the tool's write
// path — the touched-reporting that lets a derived occupancy structure (the
// engine's view) stay current with markUsed/markFree-style deltas instead of
// re-deriving the whole device per write. The contract:
//
//   - CellTouched / NodesTouched / PadTouched fire after each logical write
//     through the tool, naming exactly the resources whose configuration the
//     write can have changed (for a PIP toggle: the source and sink node;
//     for a sink clear: the sink plus its previously enabled sources).
//   - Synced fires whenever the tool reconciles configuration that changed
//     through another path (designer-level placement, a rollback's recovery
//     stream), carrying the dirty frame set from Device.FramesChangedSince
//     or the checkpoint being rolled back.
//   - Advanced fires when the device generation moved with no configuration
//     change the sink has not already seen (a flush re-delivering staged
//     frames through the port).
type ViewSink interface {
	CellTouched(ref fabric.CellRef)
	NodesTouched(nodes ...fabric.NodeID)
	PadTouched(pad fabric.PadRef)
	Synced(addrs []fabric.FrameAddr)
	Advanced()
}

// SetViewSink attaches the touched-reporting sink (nil detaches).
func (ft *FrameTool) SetViewSink(s ViewSink) { ft.sink = s }

// NewFrameTool builds a tool over a device and port. The shadow is
// initialised from the device's current configuration.
func NewFrameTool(dev *fabric.Device, port bitstream.Port) (*FrameTool, error) {
	shadow, err := bitstream.NewShadow(dev)
	if err != nil {
		return nil, err
	}
	async, _ := port.(bitstream.AsyncPort)
	return &FrameTool{
		dev: dev, port: port, shadow: shadow, genSeen: dev.Generation(),
		pendingSet:   make(map[fabric.FrameAddr]bool),
		touchSet:     make(map[fabric.FrameAddr]bool),
		async:        async,
		streamingSet: make(map[fabric.FrameAddr]bool),
		lastSent:     make(map[fabric.FrameAddr][]uint32),
		confirmed:    make(map[fabric.FrameAddr][]uint32),
	}, nil
}

// Sync refreshes the recovery shadow from the device if the configuration
// changed through a path other than this tool (checkpointing after a new
// design is loaded by the development flow).
func (ft *FrameTool) Sync() error { return ft.sync() }

// sync reconciles the shadow when the configuration changed through a path
// other than this tool (e.g. the development tool loading a new design) —
// the paper's tool accepts "a complete configuration file" as input; this
// is the equivalent import. Only the frames that actually changed are
// re-read, and their pre-images flow into any open snapshots, so a
// checkpoint covers designer-path writes too.
func (ft *FrameTool) sync() error {
	g := ft.dev.Generation()
	if g == ft.genSeen {
		return nil
	}
	addrs := ft.dev.FramesChangedSince(ft.genSeen)
	var updates []bitstream.FrameUpdate
	if ft.barrier != nil && len(addrs) > 0 {
		updates = make([]bitstream.FrameUpdate, 0, len(addrs))
	}
	for _, addr := range addrs {
		data, err := ft.dev.ReadFrame(addr.Major, addr.Minor)
		if err != nil {
			return err
		}
		ft.shadow.NoteOwned(addr, data)
		// Designer-path content is already on the fabric: it is the delta
		// baseline of the next port delivery of these frames.
		ft.lastSent[addr] = data
		ft.confirmed[addr] = data
		if updates != nil {
			updates = append(updates, bitstream.FrameUpdate{Addr: addr, Data: data})
		}
	}
	ft.genSeen = g
	if ft.barrier != nil && len(addrs) > 0 {
		// Designer-path writes are already on the device; the barrier still
		// sees them as a delivery so pre-images journal before anything
		// else builds on the reconciled state.
		if err := ft.barrier.PreDeliver(addrs); err != nil {
			return err
		}
		ft.barrier.Delivered(updates)
	}
	if ft.sink != nil && len(addrs) > 0 {
		ft.sink.Synced(addrs)
	}
	return nil
}

// SyncDeclared refreshes the recovery shadow like Sync, but the caller
// declares exactly which cells, nodes and pads its designer-path writes can
// have changed, so the view sink updates by targeted deltas instead of the
// dirty-frame sweep (a frame bit can affect nodes hex-reach columns away, so
// the sweep re-derives far more than a small splice actually touched). The
// declaration must be complete: an undeclared change would leave the derived
// occupancy stale. The facade's warm-load path uses it — the template splice
// knows its precise footprint.
func (ft *FrameTool) SyncDeclared(cells []fabric.CellRef, nodes []fabric.NodeID, pads []fabric.PadRef) error {
	g := ft.dev.Generation()
	if g == ft.genSeen {
		return nil
	}
	addrs := ft.dev.FramesChangedSince(ft.genSeen)
	var updates []bitstream.FrameUpdate
	if ft.barrier != nil && len(addrs) > 0 {
		updates = make([]bitstream.FrameUpdate, 0, len(addrs))
	}
	for _, addr := range addrs {
		data, err := ft.dev.ReadFrame(addr.Major, addr.Minor)
		if err != nil {
			return err
		}
		ft.shadow.NoteOwned(addr, data)
		// Designer-path content is already on the fabric: it is the delta
		// baseline of the next port delivery of these frames.
		ft.lastSent[addr] = data
		ft.confirmed[addr] = data
		if updates != nil {
			updates = append(updates, bitstream.FrameUpdate{Addr: addr, Data: data})
		}
	}
	ft.genSeen = g
	if ft.barrier != nil && len(addrs) > 0 {
		if err := ft.barrier.PreDeliver(addrs); err != nil {
			return err
		}
		ft.barrier.Delivered(updates)
	}
	if ft.sink != nil {
		for _, ref := range cells {
			ft.sink.CellTouched(ref)
		}
		ft.sink.NodesTouched(nodes...)
		for _, p := range pads {
			ft.sink.PadTouched(p)
		}
		ft.sink.Advanced()
	}
	return nil
}

// QuarantineFrame excludes a frame from port delivery. The caller (the
// facade's fault-tolerance layer) has established that writes to the frame
// fail persistently and has masked the corresponding logic out of the area
// manager; the tool treats the frame as dead memory until an explicit
// UnquarantineFrame (the facade's probe/release cycle) revives it.
func (ft *FrameTool) QuarantineFrame(addr fabric.FrameAddr) {
	if ft.quarantined == nil {
		ft.quarantined = make(map[fabric.FrameAddr]bool)
	}
	ft.quarantined[addr] = true
}

// UnquarantineFrame returns a frame to port delivery after its column
// passed the facade's probe/release cycle. The caller has re-verified the
// configuration memory and restored the area manager's mask.
func (ft *FrameTool) UnquarantineFrame(addr fabric.FrameAddr) {
	delete(ft.quarantined, addr)
}

// FrameQuarantined reports whether a frame is excluded from port delivery.
func (ft *FrameTool) FrameQuarantined(addr fabric.FrameAddr) bool { return ft.quarantined[addr] }

// Port returns the configuration port.
func (ft *FrameTool) Port() bitstream.Port { return ft.port }

// Shadow returns the recovery copy.
func (ft *FrameTool) Shadow() *bitstream.Shadow { return ft.shadow }

// FramesWritten returns the cumulative frame count pushed through the port.
func (ft *FrameTool) FramesWritten() int { return ft.frames }

// Edit is one configuration bit change: frame-level address plus bit index.
type Edit struct {
	Addr fabric.FrameAddr
	Bit  int
	On   bool
}

// Apply delivers a set of edits as frame writes. Edits to the same frame
// coalesce into one write; frames are staged in first-touched order. Outside
// a batch the staged frames flush as one partial bitstream before Apply
// returns; inside a batch they coalesce with neighbouring operations until
// the batch ends (or a caller forces a Flush). When VerifyHook or
// ReadbackVerify is set, every frame streams individually and the hook runs
// after each, preserving the cautious per-frame probing mode.
func (ft *FrameTool) Apply(edits []Edit) error {
	if len(edits) == 0 {
		return nil
	}
	if err := ft.sync(); err != nil {
		return err
	}
	order := []fabric.FrameAddr{}
	frames := map[fabric.FrameAddr][]uint32{}
	for _, e := range edits {
		data, seen := frames[e.Addr]
		if !seen {
			base, ok := ft.shadow.Frame(e.Addr)
			if !ok {
				return fmt.Errorf("relocate: no shadow for frame %v", e.Addr)
			}
			data = make([]uint32, len(base))
			copy(data, base)
			frames[e.Addr] = data
			order = append(order, e.Addr)
		}
		if e.On {
			data[e.Bit/32] |= 1 << (e.Bit % 32)
		} else {
			data[e.Bit/32] &^= 1 << (e.Bit % 32)
		}
	}
	perFrame := ft.VerifyHook != nil || ft.ReadbackVerify
	for _, addr := range order {
		if err := ft.stage(addr, frames[addr]); err != nil {
			return err
		}
		if !perFrame {
			continue
		}
		// The cautious modes are strictly serial: deliver the frame and
		// drain the stream before probing, as the paper's tool did.
		if err := ft.Flush(); err != nil {
			return err
		}
		if err := ft.AwaitStream(); err != nil {
			return err
		}
		if ft.ReadbackVerify && !ft.quarantined[addr] {
			got, err := ft.port.ReadFrame(addr)
			if err != nil {
				return fmt.Errorf("relocate: readback of %v: %w", addr, err)
			}
			want, _ := ft.shadow.Frame(addr)
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("relocate: readback mismatch in %v word %d", addr, i)
				}
			}
		}
		if ft.VerifyHook != nil {
			if err := ft.VerifyHook(); err != nil {
				return fmt.Errorf("relocate: after writing %v: %w", addr, err)
			}
		}
	}
	if ft.batchDepth == 0 {
		return ft.Flush()
	}
	return nil
}

// stage commits one frame write: the shadow and the device take the data
// immediately (write-through, so every read path stays coherent inside a
// batch), and the frame joins the pending set. A frame staged twice in one
// batch streams once — Flush reads the shadow, which holds the final data.
// The slice is owned by the tool from here on.
//
// Writing a frame that is part of an in-flight background stream first
// drains the stream (serial fallback): the queued burst carries the frame's
// previous staged content, and delivering it after this write would roll the
// configuration back to stale data. This gate is what makes the pipelined
// commit bit-identical to serial mode for ANY operation mix — the engine's
// disjointness pre-check merely avoids hitting it mid-procedure.
func (ft *FrameTool) stage(addr fabric.FrameAddr, data []uint32) error {
	if len(ft.streamingSet) > 0 && ft.streamingSet[addr] {
		ft.pruneStreams()
	}
	if len(ft.streamingSet) > 0 && ft.streamingSet[addr] {
		if err := ft.AwaitStream(); err != nil {
			return err
		}
	}
	if _, ok := ft.lastSent[addr]; !ok {
		// First-ever stage of this frame: the pre-staging shadow content is
		// what the fabric has held since power-up — the initial delta
		// baseline for compressed delivery.
		if prev, ok := ft.shadow.Frame(addr); ok {
			ft.lastSent[addr] = prev
			ft.confirmed[addr] = prev
		}
	}
	ft.shadow.NoteOwned(addr, data)
	if err := ft.dev.WriteFrame(addr.Major, addr.Minor, data); err != nil {
		return err
	}
	ft.genSeen = ft.dev.Generation()
	ft.frames++
	if !ft.touchSet[addr] {
		ft.touchSet[addr] = true
		ft.touched = append(ft.touched, addr)
	}
	if !ft.pendingSet[addr] {
		ft.pendingSet[addr] = true
		ft.pending = append(ft.pending, addr)
	}
	return nil
}

// Flush stages every pending frame into one partial bitstream, sorted by
// frame address so consecutive frames share FDRI bursts. It is a no-op when
// nothing is pending. On an AsyncPort the burst is enqueued for background
// shift-out and Flush returns while it is still streaming — stage-stream;
// AwaitStream is the matching harvest. On a synchronous port (or with
// Serial set) the burst is delivered before Flush returns.
//
// Designer-path writes may have landed since the frames were staged — in a
// batched plan, a Load places directly onto the device between two ops'
// tool writes, possibly into frames that are also pending here (one frame
// carries bits of every row of its column). So Flush first reconciles the
// shadow with the device (capturing those writes' pre-images into any open
// snapshots) and re-reads each pending frame from the reconciled shadow, so
// the port delivers the merged content and the generation cursor never
// jumps over a write the flush did not itself produce.
func (ft *FrameTool) Flush() error {
	if len(ft.pending) == 0 {
		return nil
	}
	if err := ft.sync(); err != nil {
		return err
	}
	addrs := ft.pending
	ft.pending = nil
	ft.pendingSet = make(map[fabric.FrameAddr]bool)
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Major != addrs[j].Major {
			return addrs[i].Major < addrs[j].Major
		}
		return addrs[i].Minor < addrs[j].Minor
	})
	if len(ft.quarantined) > 0 {
		kept := addrs[:0]
		for _, addr := range addrs {
			if !ft.quarantined[addr] {
				kept = append(kept, addr)
			}
		}
		if addrs = kept; len(addrs) == 0 {
			// Everything staged was condemned memory; the device model took
			// the writes at stage time and nothing ships.
			return nil
		}
	}
	updates := make([]bitstream.FrameUpdate, 0, len(addrs))
	for _, addr := range addrs {
		data, ok := ft.shadow.Frame(addr)
		if !ok {
			return fmt.Errorf("relocate: pending frame %v missing from shadow", addr)
		}
		updates = append(updates, bitstream.FrameUpdate{Addr: addr, Data: data, Prev: ft.lastSent[addr]})
	}
	if ft.barrier != nil {
		// The journal's ordering contract: undo records for every frame of
		// this delivery are durable before the port sees any of it.
		if err := ft.barrier.PreDeliver(addrs); err != nil {
			return err
		}
	}
	if ft.async != nil && !ft.Serial {
		// Stage-stream: the burst shifts out in the background. The words
		// are built from the shadow's current slices at enqueue time (the
		// stream copies the data), so later staging cannot mutate an
		// in-flight burst. Every frame gates conflicting writes until the
		// burst completes (pruneStreams) or the stream is awaited.
		for _, addr := range addrs {
			ft.streamingSet[addr] = true
			if !ft.unharvestedSet[addr] {
				if ft.unharvestedSet == nil {
					ft.unharvestedSet = make(map[fabric.FrameAddr]bool)
				}
				ft.unharvestedSet[addr] = true
				ft.unharvested = append(ft.unharvested, addr)
			}
		}
		ft.streamBursts = append(ft.streamBursts, addrs)
		// The burst's content is fixed at enqueue: it is the delta baseline
		// of the next delivery, whatever the shift-out's outcome (confirmed
		// only advances at a clean harvest).
		for _, u := range updates {
			ft.lastSent[u.Addr] = u.Data
		}
		ft.async.StreamUpdates(updates)
		if ft.barrier != nil {
			// The burst's content is fixed at enqueue (the stream copies the
			// data), so the delivered view is already determined here even
			// though the shift-out completes later.
			ft.barrier.Delivered(updates)
		}
		return nil
	}
	if err := ft.port.WriteUpdates(updates); err != nil {
		return err
	}
	for _, u := range updates {
		ft.lastSent[u.Addr] = u.Data
		ft.confirmed[u.Addr] = u.Data
	}
	if ft.barrier != nil {
		ft.barrier.Delivered(updates)
	}
	// The controller re-wrote the same data the reconciled shadow holds;
	// fold exactly those generation bumps in so the next sync stays a
	// no-op, and tell the view nothing it has not already applied changed.
	ft.genSeen = ft.dev.Generation()
	if ft.sink != nil {
		ft.sink.Advanced()
	}
	return nil
}

// drainSuperseded drains an in-flight stream whose outcome no longer
// matters — a rollback is about to overwrite whatever it delivered. The
// error is discarded and the Retry delegate is bypassed: re-delivering a
// superseded stream would only waste transport time and double-count the
// fault the rollback is already answering for.
func (ft *FrameTool) drainSuperseded() {
	retry := ft.Retry
	ft.Retry = nil
	_ = ft.AwaitStream()
	ft.Retry = retry
	// The superseded content is confirmed-or-overwritten either way; the
	// unharvested set must not leak into a later fault's re-delivery.
	ft.unharvested = nil
	if len(ft.unharvestedSet) > 0 {
		clear(ft.unharvestedSet)
	}
}

// pruneStreams retires the frames of every burst the background worker has
// finished shifting out since the last check — the non-blocking side of the
// in-flight tracking.
func (ft *FrameTool) pruneStreams() {
	if ft.async == nil || len(ft.streamBursts) == 0 {
		return
	}
	done := ft.async.CompletedBursts()
	for ft.burstsDone < done && len(ft.streamBursts) > 0 {
		for _, addr := range ft.streamBursts[0] {
			delete(ft.streamingSet, addr)
		}
		ft.streamBursts = ft.streamBursts[1:]
		ft.burstsDone++
	}
}

// AwaitStream blocks until every burst Flush enqueued has shifted out and
// returns the first transport error among them, clearing the streaming set
// either way. A stream error is first offered to the Retry delegate (when
// one is installed) with the unharvested frame set; a clean harvest —
// including one the delegate salvaged — confirms every enqueued burst and
// empties the set. A no-op on a synchronous port or when nothing is in
// flight.
func (ft *FrameTool) AwaitStream() error {
	if ft.async == nil {
		return nil
	}
	err := ft.harvest()
	ft.streamBursts = nil
	ft.burstsDone = ft.async.CompletedBursts()
	if len(ft.streamingSet) > 0 {
		clear(ft.streamingSet)
	}
	if err != nil && ft.Retry != nil {
		err = ft.Retry(err, ft.unharvested)
	}
	if err == nil {
		// Every enqueued burst is confirmed on the fabric (directly or
		// salvaged by the delegate): advance the confirmed delta baseline.
		for _, addr := range ft.unharvested {
			if data, ok := ft.lastSent[addr]; ok {
				ft.confirmed[addr] = data
			}
		}
		ft.unharvested = nil
		if len(ft.unharvestedSet) > 0 {
			clear(ft.unharvestedSet)
		}
	}
	return err
}

// ConfirmedBaseline returns the last frame content whose port delivery was
// confirmed — the delta baseline the facade's re-delivery ladder diffs
// against, so a failed burst's frames genuinely re-ship their changed runs.
func (ft *FrameTool) ConfirmedBaseline(addr fabric.FrameAddr) ([]uint32, bool) {
	data, ok := ft.confirmed[addr]
	return data, ok
}

// harvest performs the blocking port await, under the stall watchdog when
// StallTimeout is set. On timeout it returns ErrPortStalled (wrapped) and
// leaves the await goroutine parked on awaitCh; the next harvest reaps it.
// A reaped result can be stale — the abandoned awaiter may have returned
// nil for an earlier drain while bursts enqueued since are still in flight
// — so a nil result is only accepted when the queue is actually empty.
func (ft *FrameTool) harvest() error {
	if ft.StallTimeout <= 0 && ft.awaitCh == nil {
		return ft.async.AwaitStream()
	}
	var timeout <-chan time.Time
	if ft.StallTimeout > 0 {
		timer := time.NewTimer(ft.StallTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		if ft.awaitCh == nil {
			ch := make(chan error, 1)
			async := ft.async
			go func() { ch <- async.AwaitStream() }()
			ft.awaitCh = ch
		}
		select {
		case err := <-ft.awaitCh:
			ft.awaitCh = nil
			if err == nil && ft.async.StreamInFlight() {
				// Stale result from an abandoned await that completed
				// before the current bursts were enqueued; await again.
				continue
			}
			return err
		case <-timeout:
			return fmt.Errorf("%w (no harvest within %v)", ErrPortStalled, ft.StallTimeout)
		}
	}
}

// HarvestPending reaps an abandoned watchdog await and drains any remaining
// in-flight stream, without the watchdog and without the Retry delegate —
// the shutdown path: Close must not leave the awaiter goroutine blocked on
// the port, and a fault surfacing here has no operation left to answer to.
func (ft *FrameTool) HarvestPending() {
	if ft.async == nil {
		return
	}
	if ft.awaitCh != nil {
		<-ft.awaitCh
		ft.awaitCh = nil
	}
	_ = ft.async.AwaitStream()
	ft.streamBursts = nil
	ft.burstsDone = ft.async.CompletedBursts()
	if len(ft.streamingSet) > 0 {
		clear(ft.streamingSet)
	}
	ft.unharvested = nil
	if len(ft.unharvestedSet) > 0 {
		clear(ft.unharvestedSet)
	}
}

// StreamInFlight reports whether a background stream is still shifting out.
func (ft *FrameTool) StreamInFlight() bool {
	ft.pruneStreams()
	return len(ft.streamBursts) > 0
}

// StreamDisjoint reports whether none of the given frames is part of an
// in-flight stream — the engine's overlap rule: op N+1 may start executing
// while op N's stream shifts out only if their frame sets are disjoint.
func (ft *FrameTool) StreamDisjoint(addrs []fabric.FrameAddr) bool {
	ft.pruneStreams()
	if len(ft.streamingSet) == 0 {
		return true
	}
	for _, addr := range addrs {
		if ft.streamingSet[addr] {
			return false
		}
	}
	return true
}

// BeginBatch opens (or nests) a coalescing batch: staged frames accumulate
// until the outermost EndBatch, a Flush, or a per-frame verification mode
// forces delivery.
func (ft *FrameTool) BeginBatch() { ft.batchDepth++ }

// EndBatch closes one batch level and flushes when the outermost level
// closes.
func (ft *FrameTool) EndBatch() error {
	if ft.batchDepth > 0 {
		ft.batchDepth--
	}
	if ft.batchDepth == 0 {
		return ft.Flush()
	}
	return nil
}

// InBatch runs fn inside one batch level. The batch always closes — a
// failing fn still gets its pending frames flushed (they are dead only if
// the caller rolls back, which drops them via AbortPending) — and a flush
// failure surfaces only when fn itself succeeded.
func (ft *FrameTool) InBatch(fn func() error) error {
	ft.BeginBatch()
	err := fn()
	if endErr := ft.EndBatch(); err == nil {
		err = endErr
	}
	return err
}

// AbortPending drops the pending stream without delivering it. Used by
// rollback: the recovery bitstream supersedes whatever the failed operation
// still had queued (the device already took the staged writes, and the
// recovery stream overwrites them).
func (ft *FrameTool) AbortPending() {
	ft.pending = nil
	ft.pendingSet = make(map[fabric.FrameAddr]bool)
}

// MarkTouched resets the touched-frame recording and returns. The engine
// brackets each relocation with MarkTouched/TouchedFrames so every CellMove
// reports exactly the frame set it wrote.
func (ft *FrameTool) MarkTouched() {
	ft.touched = ft.touched[:0]
	for addr := range ft.touchSet {
		delete(ft.touchSet, addr)
	}
}

// TouchedFrames returns a copy of the distinct frames staged since the last
// MarkTouched, in first-touched order.
func (ft *FrameTool) TouchedFrames() []fabric.FrameAddr {
	out := make([]fabric.FrameAddr, len(ft.touched))
	copy(out, ft.touched)
	return out
}

// BeginSnapshot synchronises the shadow with the device and opens a
// frame-granular copy-on-write checkpoint: from here on the shadow saves the
// pre-image of every frame that changes (tool writes and designer-path
// writes alike — the latter are captured by the next sync), so a rollback
// replays only what the operation touched.
func (ft *FrameTool) BeginSnapshot() (*bitstream.Snapshot, error) {
	if err := ft.sync(); err != nil {
		return nil, err
	}
	return ft.shadow.Begin(), nil
}

// RecoveryWords builds the partial recovery stream for a snapshot taken with
// BeginSnapshot. Any in-flight stream drains first — the recovery words are
// fed to the controller the worker would otherwise still own, and the
// rollback overwrites frames the stream may cover. The drained stream's own
// error is discarded: a rollback is already under way, and the recovery
// stream supersedes whatever the failed delivery left behind. It then
// synchronises so designer-path writes since the checkpoint are part of the
// dirty set.
func (ft *FrameTool) RecoveryWords(snap *bitstream.Snapshot) ([]uint32, error) {
	ft.drainSuperseded()
	if err := ft.sync(); err != nil {
		return nil, err
	}
	return snap.RecoveryWords(), nil
}

// CompleteRestore finishes a rollback after the recovery stream was fed to
// the configuration logic: the pending (dead) stream of the failed operation
// is dropped, the shadow rolls back to the checkpoint state, and the
// generation cursor catches up with the recovery writes. The snapshot's
// dirty-frame set is handed to the view sink, which restores its occupancy
// picture from exactly those frames instead of rescanning the device. The
// snapshot stays armed, so the same checkpoint can back another attempt.
func (ft *FrameTool) CompleteRestore(snap *bitstream.Snapshot) {
	ft.drainSuperseded() // see RecoveryWords: a rollback supersedes the stream
	dirty := snap.Frames()
	ft.AbortPending()
	snap.Rollback()
	// The recovery stream physically re-delivered every dirty frame in full;
	// the rolled-back shadow content is the new delta baseline for both maps.
	for _, addr := range dirty {
		if data, ok := ft.shadow.Frame(addr); ok {
			ft.lastSent[addr] = data
			ft.confirmed[addr] = data
		}
	}
	ft.genSeen = ft.dev.Generation()
	if ft.sink != nil && len(dirty) > 0 {
		ft.sink.Synced(dirty)
	}
}

// cellEdits builds the edits that set a cell's configuration word.
func (ft *FrameTool) cellEdits(ref fabric.CellRef, cc fabric.CellConfig) []Edit {
	start, width := ft.dev.CellSlotRange(ref.Cell)
	word := cc.Encode()
	var edits []Edit
	for i := 0; i < width; i++ {
		major, minor, bit := ft.dev.BitAddr(ref.Coord, start+i)
		edits = append(edits, Edit{
			Addr: fabric.FrameAddr{Major: major, Minor: minor},
			Bit:  bit,
			On:   word>>i&1 == 1,
		})
	}
	return edits
}

// pipEdit builds the edit toggling one PIP bit of a sink.
func (ft *FrameTool) pipEdit(c fabric.Coord, sinkLocal, bit int, on bool) Edit {
	start, _ := ft.dev.PIPSlotRange(sinkLocal)
	major, minor, fbit := ft.dev.BitAddr(c, start+bit)
	return Edit{Addr: fabric.FrameAddr{Major: major, Minor: minor}, Bit: fbit, On: on}
}

// WriteCell applies a cell configuration through the port.
//
// The sink is notified even when Apply fails: a multi-frame write can stage
// some frames before a per-frame verification rejects a later one, and the
// sink's re-derivation reads the device truth, so notifying on error keeps
// the view honest for callers that continue without a rollback.
func (ft *FrameTool) WriteCell(ref fabric.CellRef, cc fabric.CellConfig) error {
	err := ft.Apply(ft.cellEdits(ref, cc))
	if ft.sink != nil {
		ft.sink.CellTouched(ref)
	}
	return err
}

// SetPIP toggles the PIP from src to the sink node through the port.
func (ft *FrameTool) SetPIP(src, sink fabric.NodeID, on bool) error {
	if pad, ok := ft.dev.PadOfNode(sink); ok {
		return ft.setPadPIP(pad, src, on)
	}
	c, local, ok := ft.dev.SplitNode(sink)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("relocate: node %d is not a configurable sink", sink)
	}
	bit, ok := ft.dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("relocate: no PIP from %d to %d", src, sink)
	}
	err := ft.Apply([]Edit{ft.pipEdit(c, local, bit, on)})
	if ft.sink != nil {
		ft.sink.NodesTouched(src, sink) // on error too — see WriteCell
	}
	return err
}

// SetPath enables (or disables) every PIP along a node path in path order.
func (ft *FrameTool) SetPath(path []fabric.NodeID, on bool) error {
	for i := 1; i < len(path); i++ {
		if err := ft.SetPIP(path[i-1], path[i], on); err != nil {
			return err
		}
	}
	return nil
}

// ClearSinkPIPs disables every enabled PIP of a sink node.
func (ft *FrameTool) ClearSinkPIPs(sink fabric.NodeID) error {
	c, local, ok := ft.dev.SplitNode(sink)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("relocate: node %d is not a configurable sink", sink)
	}
	// The previously enabled sources lose a consumer; report them alongside
	// the sink so the view can re-derive their occupancy.
	srcs := ft.dev.EnabledSourceNodes(c, local)
	mask := ft.dev.PIPMask(c, local)
	var edits []Edit
	for b := 0; mask != 0; b++ {
		if mask>>b&1 == 1 {
			edits = append(edits, ft.pipEdit(c, local, b, false))
			mask &^= 1 << b
		}
	}
	err := ft.Apply(edits)
	if ft.sink != nil && len(edits) > 0 {
		ft.sink.NodesTouched(append(srcs, sink)...) // on error too — see WriteCell
	}
	return err
}

func (ft *FrameTool) setPadPIP(pad fabric.PadRef, src fabric.NodeID, on bool) error {
	pc := ft.dev.ReadPad(pad)
	srcs := ft.dev.PadOutSourceNodes(pad)
	found := false
	for b, n := range srcs {
		if n == src {
			if on {
				pc.OutMask |= 1 << b
				pc.Output = true
			} else {
				pc.OutMask &^= 1 << b
			}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("relocate: node %d does not feed pad %v", src, pad)
	}
	// Pad config lives in one frame; rebuild it via the designer path on a
	// scratch copy is not available, so edit the frame bits directly.
	return ft.writePad(pad, pc)
}

func (ft *FrameTool) writePad(pad fabric.PadRef, pc fabric.PadConfig) error {
	// Compute the pad's frame and splice the 8-bit config.
	addr := ft.dev.PadConfigFrame(pad)
	_, _, bitBase := ft.dev.PadBitAddr(pad)
	word := pc.Encode()
	var edits []Edit
	for i := 0; i < 8; i++ {
		edits = append(edits, Edit{Addr: addr, Bit: bitBase + i, On: word>>i&1 == 1})
	}
	err := ft.Apply(edits)
	if ft.sink != nil {
		ft.sink.PadTouched(pad) // on error too — see WriteCell
	}
	return err
}

// WritePadConfig applies a pad configuration through the port.
func (ft *FrameTool) WritePadConfig(pad fabric.PadRef, pc fabric.PadConfig) error {
	return ft.writePad(pad, pc)
}
