package relocate

import (
	"maps"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/place"
)

// TestViewMatchesRescanUnderRandomOps is the O(change) contract's property
// test: after ANY sequence of loads (designer-path writes), relocations,
// tree releases, cell/pad clears, raw PIP pokes and snapshot rollbacks, the
// incrementally maintained view must be bit-identical to a fresh rescan of
// the configuration memory.
func TestViewMatchesRescanUnderRandomOps(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	ctrl := bitstream.NewController(dev)
	port := bitstream.NewParallelPort(ctrl, 50e6)
	eng, err := NewEngine(dev, port)
	if err != nil {
		t.Fatal(err)
	}
	eng.MaxCyclesPerWait = 0
	rng := rand.New(rand.NewSource(20260726))

	reserved := map[fabric.PadRef]bool{}
	var cells []fabric.CellRef  // cells believed occupied (may go stale)
	var sources []fabric.NodeID // net sources of loaded designs
	var pads []fabric.PadRef    // pads bound by loaded designs

	check := func(ctx string) {
		t.Helper()
		eng.view.refresh()
		fresh := newView(dev)
		if !maps.Equal(eng.view.used, fresh.used) {
			for n := range fresh.used {
				if !eng.view.used[n] {
					t.Errorf("%s: node %d used on device, missing from view", ctx, n)
				}
			}
			for n := range eng.view.used {
				if !fresh.used[n] {
					t.Errorf("%s: node %d in view, free on device", ctx, n)
				}
			}
			t.Fatalf("%s: used sets diverged (view %d, rescan %d)", ctx, len(eng.view.used), len(fresh.used))
		}
		if !maps.Equal(eng.view.inUse, fresh.inUse) {
			t.Fatalf("%s: inUse sets diverged (view %d, rescan %d)", ctx, len(eng.view.inUse), len(fresh.inUse))
		}
		if !maps.Equal(eng.view.freeCLB, fresh.freeCLB) {
			t.Fatalf("%s: freeCLB sets diverged (view %d, rescan %d)", ctx, len(eng.view.freeCLB), len(fresh.freeCLB))
		}
	}

	load := func(i int) {
		nl := itc99.Generate(itc99.GenConfig{
			Name: "rnd", Inputs: 2, Outputs: 1, FFs: 2, LUTs: 3,
			Seed: uint64(i + 1), Style: itc99.FreeRunning,
		})
		row, col := rng.Intn(dev.Rows-3), rng.Intn(dev.Cols-3)
		region, err := place.AutoRegion(dev, nl, row, col, 0.35)
		if err != nil {
			return
		}
		d, err := place.Place(dev, nl, place.Options{Region: region, ReservePads: reserved})
		if err != nil {
			return
		}
		cells = append(cells, d.OccupiedCells()...)
		for _, src := range d.SourceOf {
			sources = append(sources, src)
		}
		for _, p := range d.PadOf {
			pads = append(pads, p)
		}
		// Half the loads reconcile through the tool (the facade's path, the
		// Synced delta); the other half leave the designer writes for the
		// view's own FramesChangedSince fallback to discover.
		if rng.Intn(2) == 0 {
			if err := eng.Tool.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}

	op := func(i int) string {
		switch k := rng.Intn(11); k {
		case 0, 1:
			load(i)
			return "load"
		case 2, 3, 4:
			if len(cells) == 0 {
				return "noop"
			}
			ci := rng.Intn(len(cells))
			from := cells[ci]
			near := fabric.Coord{Row: rng.Intn(dev.Rows), Col: rng.Intn(dev.Cols)}
			dst, err := eng.view.findFreeCLB(near, from.Coord)
			if err != nil {
				return "relocate-nofree"
			}
			to := fabric.CellRef{Coord: dst, Cell: from.Cell}
			if _, err := eng.RelocateCell(from, to); err == nil {
				cells[ci] = to
			}
			return "relocate"
		case 5:
			if len(sources) == 0 {
				return "noop"
			}
			_ = eng.ReleaseTree(sources[rng.Intn(len(sources))])
			return "release-tree"
		case 6:
			if len(cells) == 0 {
				return "noop"
			}
			ci := rng.Intn(len(cells))
			if err := eng.ClearCell(cells[ci]); err != nil {
				t.Fatal(err)
			}
			cells = append(cells[:ci], cells[ci+1:]...)
			return "clear-cell"
		case 7:
			if len(pads) == 0 {
				return "noop"
			}
			pi := rng.Intn(len(pads))
			if err := eng.ClearPad(pads[pi]); err != nil {
				t.Fatal(err)
			}
			delete(reserved, pads[pi])
			pads = append(pads[:pi], pads[pi+1:]...)
			return "clear-pad"
		case 8:
			// Reroute a random routed pin (duplicate-then-drop, Fig. 5).
			if len(cells) == 0 {
				return "noop"
			}
			ref := cells[rng.Intn(len(cells))]
			for k := 0; k < fabric.LUTInputs; k++ {
				l := fabric.LocalPinI(ref.Cell, k)
				if dev.PIPMask(ref.Coord, l) != 0 {
					_, _ = eng.RerouteSink(ref.Coord, l)
					return "reroute"
				}
			}
			return "noop"
		case 9:
			// Raw designer-path poke: toggle one valid PIP bit directly on
			// the device, bypassing the tool entirely.
			c := fabric.Coord{Row: rng.Intn(dev.Rows), Col: rng.Intn(dev.Cols)}
			local := rng.Intn(fabric.LocalHex(3, fabric.HexesPerDir-1) + 1)
			if !fabric.IsLocalSink(local) {
				return "noop"
			}
			mask := dev.PIPMask(c, local)
			bit := rng.Intn(len(fabric.SinkSources(local)))
			dev.SetPIPMask(c, local, mask^(1<<bit))
			return "raw-pip"
		default:
			// Snapshot a few ops, roll them back through the recovery
			// stream, and verify the view is restored from the dirty set.
			snap, err := eng.Tool.BeginSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			for n := rng.Intn(3); n >= 0; n-- {
				if len(cells) > 0 {
					_ = eng.ClearCell(cells[rng.Intn(len(cells))])
				}
				if len(sources) > 0 && rng.Intn(2) == 0 {
					_ = eng.ReleaseTree(sources[rng.Intn(len(sources))])
				}
			}
			words, err := eng.Tool.RecoveryWords(snap)
			if err != nil {
				t.Fatal(err)
			}
			if len(words) > 0 {
				if err := ctrl.Feed(words...); err != nil {
					t.Fatal(err)
				}
			}
			eng.Tool.CompleteRestore(snap)
			snap.Release()
			return "rollback"
		}
	}

	check("initial")
	for i := 0; i < 220; i++ {
		name := op(i)
		check(name)
		if t.Failed() {
			t.Fatalf("diverged after op %d (%s)", i, name)
		}
	}
}
