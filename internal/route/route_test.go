package route

import (
	"testing"

	"repro/internal/fabric"
)

func dev(t *testing.T) *fabric.Device {
	t.Helper()
	return fabric.NewDevice(fabric.TestDevice)
}

// checkPath verifies that every hop of a path is a real PIP of the fabric.
func checkPath(t *testing.T, d *fabric.Device, path []fabric.NodeID) {
	t.Helper()
	if len(path) < 2 {
		t.Fatal("degenerate path")
	}
	for i := 1; i < len(path); i++ {
		src, dst := path[i-1], path[i]
		if pad, ok := d.PadOfNode(dst); ok {
			found := false
			for _, n := range d.PadOutSourceNodes(pad) {
				if n == src {
					found = true
				}
			}
			if !found {
				t.Fatalf("hop %d: %d does not feed pad %v", i, src, pad)
			}
			continue
		}
		c, local, ok := d.SplitNode(dst)
		if !ok {
			t.Fatalf("hop %d: bad node", i)
		}
		if _, ok := d.PIPBitFor(c, local, src); !ok {
			t.Fatalf("hop %d: no PIP %d -> %d", i, src, dst)
		}
	}
}

func TestRouteCellToCell(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	sink := d.NodeIDAt(fabric.Coord{Row: 2, Col: 5}, fabric.LocalPinI(1, 2))
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	path := nets[0].Paths[sink]
	if path[0] != src || path[len(path)-1] != sink {
		t.Fatal("path endpoints wrong")
	}
	checkPath(t, d, path)
}

func TestRouteMultiSinkSharesTree(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 4, Col: 2}, fabric.LocalOutXQ(1))
	s1 := d.NodeIDAt(fabric.Coord{Row: 4, Col: 8}, fabric.LocalPinI(0, 0))
	s2 := d.NodeIDAt(fabric.Coord{Row: 4, Col: 8}, fabric.LocalPinI(0, 1))
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{s1, s2}}})
	if err != nil {
		t.Fatal(err)
	}
	checkPath(t, d, nets[0].Paths[s1])
	checkPath(t, d, nets[0].Paths[s2])
	// The shared tree should be smaller than two independent paths.
	if len(nets[0].Tree) >= len(nets[0].Paths[s1])+len(nets[0].Paths[s2]) {
		t.Errorf("tree %d nodes not sharing: paths %d + %d",
			len(nets[0].Tree), len(nets[0].Paths[s1]), len(nets[0].Paths[s2]))
	}
}

func TestRoutePadToPin(t *testing.T) {
	d := dev(t)
	pad := fabric.PadRef{Side: West, Pos: 3, K: 0}
	src := d.PadNodeID(pad)
	sink := d.NodeIDAt(fabric.Coord{Row: 3, Col: 4}, fabric.LocalPinI(2, 1))
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "in", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	checkPath(t, d, nets[0].Paths[sink])
}

const West = fabric.West // readability alias

func TestRoutePinToPad(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 5, Col: 9}, fabric.LocalOutX(3))
	pad := fabric.PadRef{Side: fabric.East, Pos: 5, K: 1}
	sink := d.PadNodeID(pad)
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "out", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	path := nets[0].Paths[sink]
	checkPath(t, d, path)
	if path[len(path)-1] != sink {
		t.Error("path does not end at pad")
	}
}

func TestApplyEnablesPIPs(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 1, Col: 1}, fabric.LocalOutX(0))
	sink := d.NodeIDAt(fabric.Coord{Row: 1, Col: 3}, fabric.LocalPinI(0, 0))
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(d, nets); err != nil {
		t.Fatal(err)
	}
	// Walk the configuration from the sink back to the source.
	path := nets[0].Paths[sink]
	for i := len(path) - 1; i >= 1; i-- {
		dst := path[i]
		c, local, _ := d.SplitNode(dst)
		enabled := d.EnabledSourceNodes(c, local)
		found := false
		for _, n := range enabled {
			if n == path[i-1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("PIP %d -> %d not enabled in config", path[i-1], dst)
		}
	}
}

func TestDisablePathPIP(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 1, Col: 1}, fabric.LocalOutX(0))
	sink := d.NodeIDAt(fabric.Coord{Row: 1, Col: 2}, fabric.LocalPinI(0, 0))
	r := NewRouter(d)
	nets, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	Apply(d, nets)
	path := nets[0].Paths[sink]
	for i := 1; i < len(path); i++ {
		if err := DisablePathPIP(d, path[i-1], path[i]); err != nil {
			t.Fatal(err)
		}
	}
	c, local, _ := d.SplitNode(sink)
	if n := d.EnabledSourceNodes(c, local); len(n) != 0 {
		t.Errorf("sink still driven after disable: %v", n)
	}
}

func TestDisjointRoutingNeverShares(t *testing.T) {
	d := dev(t)
	var nets []Net
	for i := 0; i < 4; i++ {
		src := d.NodeIDAt(fabric.Coord{Row: i, Col: 0}, fabric.LocalOutX(0))
		sink := d.NodeIDAt(fabric.Coord{Row: i, Col: 6}, fabric.LocalPinI(0, 0))
		nets = append(nets, Net{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}})
	}
	r := NewRouter(d)
	routed, err := r.RouteDisjoint(nets)
	if err != nil {
		t.Fatal(err)
	}
	used := map[fabric.NodeID]int{}
	for i := range routed {
		for _, n := range routed[i].Tree {
			used[n]++
			if used[n] > 1 {
				t.Fatalf("node %d used by two disjoint nets", n)
			}
		}
	}
}

func TestCongestionNegotiation(t *testing.T) {
	d := dev(t)
	// Many nets crossing the same region: negotiation must find disjoint
	// final assignments.
	var nets []Net
	for i := 0; i < 6; i++ {
		src := d.NodeIDAt(fabric.Coord{Row: 3, Col: 1}, fabric.LocalOutX(i%4))
		if i >= 4 {
			src = d.NodeIDAt(fabric.Coord{Row: 4, Col: 1}, fabric.LocalOutX(i%4))
		}
		sink := d.NodeIDAt(fabric.Coord{Row: 3 + i%2, Col: 9}, fabric.LocalPinI(i%4, i/4))
		nets = append(nets, Net{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}})
	}
	r := NewRouter(d)
	routed, err := r.RouteAll(nets)
	if err != nil {
		t.Fatal(err)
	}
	used := map[fabric.NodeID]bool{}
	for i := range routed {
		for _, n := range routed[i].Tree {
			if n == routed[i].Source {
				continue
			}
			if used[n] {
				t.Fatalf("node %d shared between nets after negotiation", n)
			}
			used[n] = true
		}
	}
}

func TestBlockedNodesAvoided(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	sink := d.NodeIDAt(fabric.Coord{Row: 2, Col: 4}, fabric.LocalPinI(0, 0))
	r := NewRouter(d)
	// Block everything in the direct row corridor except detours.
	for c := 2; c <= 4; c++ {
		for i := 0; i < fabric.SinglesPerDir; i++ {
			r.Block(d.NodeIDAt(fabric.Coord{Row: 2, Col: c}, fabric.LocalSingle(fabric.East, i)))
		}
	}
	nets, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets[0].Tree {
		if r.Blocked(n) {
			t.Fatal("route used a blocked node")
		}
	}
}

func TestRouteFailsWhenFullyBlocked(t *testing.T) {
	d := dev(t)
	src := d.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	sink := d.NodeIDAt(fabric.Coord{Row: 2, Col: 4}, fabric.LocalPinI(0, 0))
	r := NewRouter(d)
	// Block every wire start on the whole device.
	for row := 0; row < d.Rows; row++ {
		for col := 0; col < d.Cols; col++ {
			for dir := fabric.Dir(0); dir < 4; dir++ {
				for i := 0; i < fabric.SinglesPerDir; i++ {
					r.Block(d.NodeIDAt(fabric.Coord{Row: row, Col: col}, fabric.LocalSingle(dir, i)))
				}
			}
		}
	}
	if _, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}}); err == nil {
		t.Fatal("route succeeded through fully blocked fabric")
	}
}

func TestPathDelayGrowsWithDistance(t *testing.T) {
	d := dev(t)
	r := NewRouter(d)
	src := d.NodeIDAt(fabric.Coord{Row: 1, Col: 0}, fabric.LocalOutX(0))
	near := d.NodeIDAt(fabric.Coord{Row: 1, Col: 1}, fabric.LocalPinI(0, 0))
	far := d.NodeIDAt(fabric.Coord{Row: 6, Col: 11}, fabric.LocalPinI(0, 0))
	nets, err := r.RouteAll([]Net{
		{Name: "near", Source: src, Sinks: []fabric.NodeID{near}},
		{Name: "far", Source: d.NodeIDAt(fabric.Coord{Row: 1, Col: 0}, fabric.LocalOutX(1)), Sinks: []fabric.NodeID{far}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dNear := nets[0].DelayTo(d, near)
	dFar := nets[1].DelayTo(d, far)
	if dNear <= 0 || dFar <= dNear {
		t.Errorf("delays near=%.2f far=%.2f", dNear, dFar)
	}
}

func TestRouteNetNoSinks(t *testing.T) {
	d := dev(t)
	r := NewRouter(d)
	src := d.NodeIDAt(fabric.Coord{Row: 0, Col: 0}, fabric.LocalOutX(0))
	if _, err := r.RouteAll([]Net{{Name: "n", Source: src}}); err == nil {
		t.Error("net with no sinks accepted")
	}
}

// TestPadSinkIsTerminal pins the pad-terminal rule: when a multi-sink net
// includes an output pad, the pad must never seed the search for the
// remaining sinks — a signal cannot re-enter the array through an output
// pad, and a path built "through" the pad (pad -> border wire -> pin) is
// electrically dead (the branch would float, and the fabric simulator
// latches the resulting X into downstream state). The second sink here sits
// right next to the pad, so a pad seed would win the search instantly if it
// were allowed.
func TestPadSinkIsTerminal(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	src := dev.NodeIDAt(fabric.Coord{Row: 1, Col: 2}, fabric.LocalOutX(0))
	pad := fabric.PadRef{Side: fabric.East, Pos: 5, K: 0}
	padNode := dev.PadNodeID(pad)
	pin := dev.NodeIDAt(fabric.Coord{Row: 5, Col: 23}, fabric.LocalPinI(0, 0))
	r := NewRouter(dev)
	routed, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{padNode, pin}}})
	if err != nil {
		t.Fatal(err)
	}
	for sink, path := range routed[0].Paths {
		for i, n := range path {
			if _, isPad := dev.PadOfNode(n); isPad && i != len(path)-1 {
				t.Fatalf("sink %d: pad node %d at position %d of %v — routed through an output pad", sink, n, i, path)
			}
		}
	}
	// The pad must still be part of the net's tree, so disjoint routing of
	// later nets treats it as occupied.
	found := false
	for _, n := range routed[0].Tree {
		if n == padNode {
			found = true
		}
	}
	if !found {
		t.Fatal("pad sink missing from the routed tree")
	}

	// Whitebox: the pad must never have entered the expansion seed list —
	// that is the mechanism by which the dead branch was built (the pad,
	// grafted into the tree by the first sink, seeded the second sink's
	// search and expanded through padFanout back into the array).
	for _, n := range r.seedBuf {
		if n >= dev.PadBase() {
			t.Fatalf("pad node %d used as an expansion seed", n)
		}
	}
}
