// Package route implements signal routing over the fabric's programmable
// interconnect: an A*-based maze expansion with PathFinder-style negotiated
// congestion, plus path delay calculation. The relocation engine reuses the
// router to build replica connections out of free routing resources only, as
// the paper requires ("the temporary transfer paths ... use only free
// routing resources").
package route

import (
	"fmt"

	"repro/internal/fabric"
)

// Net is a routing request: one source node (cell output or input pad) and
// one or more sink nodes (cell input pins or output pads).
type Net struct {
	Name   string
	Source fabric.NodeID
	Sinks  []fabric.NodeID
	// Bound, when non-empty, confines the paths to non-pad sinks inside the
	// rectangle: every intermediate node must lie in a tile the rectangle
	// contains. Paths to pad sinks are exempt (a pad sits on the device edge,
	// outside any interior region). The template capture path sets it so a
	// design's interior routing stays region-contained and therefore
	// translation-invariant.
	Bound fabric.Rect
}

// RoutedNet is a successfully routed net: a tree of nodes rooted at the
// source covering every sink.
type RoutedNet struct {
	Net
	// Paths maps each sink to its node sequence from source to sink
	// (inclusive on both ends).
	Paths map[fabric.NodeID][]fabric.NodeID
	// Tree is the union of all path nodes.
	Tree []fabric.NodeID
}

// DelayTo returns the propagation delay in nanoseconds from source to sink.
func (rn *RoutedNet) DelayTo(dev *fabric.Device, sink fabric.NodeID) float64 {
	return PathDelayNs(dev, rn.Paths[sink])
}

// PathDelayNs sums the wire delays along a node path.
func PathDelayNs(dev *fabric.Device, path []fabric.NodeID) float64 {
	total := 0.0
	for _, n := range path {
		total += nodeDelay(dev, n)
	}
	return total
}

func nodeDelay(dev *fabric.Device, n fabric.NodeID) float64 {
	if _, ok := dev.PadOfNode(n); ok {
		return fabric.WireDelayNs(fabric.KindPad)
	}
	_, local, ok := dev.SplitNode(n)
	if !ok {
		return 0
	}
	kind, _, _ := fabric.DecodeLocal(local)
	return fabric.WireDelayNs(kind)
}

// Router routes sets of nets over a device with negotiated congestion.
//
// A Router is built once and reused: all per-session state (blocked nodes,
// congestion history, usage counts) and all per-search state (the A* open
// set, cost and predecessor tables) live in epoch-stamped arrays indexed by
// NodeID, so Reset and every search start are O(1) instead of reallocating
// device-sized tables. The lazy fanout cache likewise persists across
// searches — relocation engines route thousands of nets over the same
// topology, and the cache warms exactly once.
type Router struct {
	dev *fabric.Device
	// MaxIters bounds the negotiation rounds.
	MaxIters int
	// Greedy scales the A* heuristic. The admissible default (1) finds
	// delay-optimal paths but, with the true lower bound sitting far below
	// real per-tile cost, expands close to the whole bounding box per sink.
	// Values above 1 trade optimality for focus — the warm-load and
	// translation boundary patches use it: their few pad nets don't need
	// delay-optimal trees, they need O(path) search. Zero means 1.
	Greedy float64

	adj [][]fabric.NodeID // lazy fanout cache, indexed by NodeID

	// Session state, valid while its stamp equals epoch (Reset bumps the
	// epoch, invalidating everything at once).
	epoch     uint64
	blockedAt []uint64
	history   []float64 // PathFinder history cost
	historyAt []uint64
	present   []int32 // current usage count
	presentAt []uint64
	owner     []int32 // net index last routed over the node
	ownerAt   []uint64

	// Per-search state (one routeOne call), stamped with searchEpoch.
	searchEpoch uint64
	prev        []fabric.NodeID
	prevAt      []uint64
	best        []float64
	bestAt      []uint64

	// Per-net tree membership, stamped with treeEpoch. treePrev[n] is the
	// predecessor of n inside the current net's tree (valid only while
	// treeAt[n] == treeEpoch); walking it from a sink reconstructs the full
	// source-to-sink path without keeping per-node path copies.
	treeEpoch uint64
	treeAt    []uint64
	treePrev  []fabric.NodeID

	q pq // reusable open set

	// Reusable per-call scratch: the growing seed list of the net being
	// routed and the path buffer reconstruct writes into. Both are valid
	// only until the next routeNet/routeOne call, and both keep RouteAll
	// allocation-flat — allocations track the paths returned to the caller,
	// not the search volume.
	seedBuf []fabric.NodeID
	pathBuf []fabric.NodeID
}

// NewRouter creates a router over a device.
func NewRouter(dev *fabric.Device) *Router {
	n := int(dev.PadBase()) + dev.NumPads()
	return &Router{
		dev:         dev,
		MaxIters:    40,
		adj:         make([][]fabric.NodeID, n),
		epoch:       1,
		blockedAt:   make([]uint64, n),
		history:     make([]float64, n),
		historyAt:   make([]uint64, n),
		present:     make([]int32, n),
		presentAt:   make([]uint64, n),
		owner:       make([]int32, n),
		ownerAt:     make([]uint64, n),
		searchEpoch: 1,
		prev:        make([]fabric.NodeID, n),
		prevAt:      make([]uint64, n),
		best:        make([]float64, n),
		bestAt:      make([]uint64, n),
		treeEpoch:   1,
		treeAt:      make([]uint64, n),
		treePrev:    make([]fabric.NodeID, n),
	}
}

// Reset returns the router to its freshly-constructed state — no blocked
// nodes, no congestion history — in O(1). Callers that previously built a
// new router per operation reuse one this way, keeping the fanout cache.
func (r *Router) Reset() { r.epoch++ }

// Block marks nodes as unusable (owned by other circuitry).
func (r *Router) Block(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		r.blockedAt[n] = r.epoch
	}
}

// Unblock releases nodes.
func (r *Router) Unblock(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		r.blockedAt[n] = 0
	}
}

// Blocked reports whether a node is blocked.
func (r *Router) Blocked(n fabric.NodeID) bool { return r.blockedAt[n] == r.epoch }

func (r *Router) historyOf(n fabric.NodeID) float64 {
	if r.historyAt[n] == r.epoch {
		return r.history[n]
	}
	return 0
}

func (r *Router) addHistory(n fabric.NodeID, d float64) {
	if r.historyAt[n] != r.epoch {
		r.historyAt[n] = r.epoch
		r.history[n] = 0
	}
	r.history[n] += d
}

func (r *Router) presentOf(n fabric.NodeID) int32 {
	if r.presentAt[n] == r.epoch {
		return r.present[n]
	}
	return 0
}

func (r *Router) addPresent(n fabric.NodeID, d int32) int32 {
	if r.presentAt[n] != r.epoch {
		r.presentAt[n] = r.epoch
		r.present[n] = 0
	}
	r.present[n] += d
	return r.present[n]
}

// ownerOf returns the owning net index, or -1 when unowned.
func (r *Router) ownerOf(n fabric.NodeID) int32 {
	if r.ownerAt[n] == r.epoch {
		return r.owner[n]
	}
	return -1
}

func (r *Router) setOwner(n fabric.NodeID, idx int32) {
	r.ownerAt[n] = r.epoch
	r.owner[n] = idx
}

func (r *Router) clearOwner(n fabric.NodeID) { r.ownerAt[n] = 0 }

func (r *Router) fanout(n fabric.NodeID) []fabric.NodeID {
	if cached := r.adj[n]; cached != nil {
		return cached
	}
	edges := r.dev.FanoutOf(n)
	out := make([]fabric.NodeID, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.Sink)
	}
	if out == nil {
		out = []fabric.NodeID{}
	}
	r.adj[n] = out
	return out
}

// item is a priority-queue entry.
type item struct {
	node fabric.NodeID
	cost float64
	est  float64
}

// pq is a typed binary min-heap on (est, node) — the node tie-break keeps
// expansion deterministic. Hand-rolled to avoid container/heap's interface
// boxing on every push and pop.
type pq []item

func pqLess(a, b item) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}

func (p *pq) push(it item) {
	*p = append(*p, it)
	q := *p
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (p *pq) pop() item {
	q := *p
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*p = q
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && pqLess(q[l], q[smallest]) {
			smallest = l
		}
		if rgt < len(q) && pqLess(q[rgt], q[smallest]) {
			smallest = rgt
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// tileOf returns the coordinate used for the A* heuristic.
func (r *Router) tileOf(n fabric.NodeID) fabric.Coord {
	if pad, ok := r.dev.PadOfNode(n); ok {
		switch pad.Side {
		case fabric.North:
			return fabric.Coord{Row: 0, Col: pad.Pos}
		case fabric.South:
			return fabric.Coord{Row: r.dev.Rows - 1, Col: pad.Pos}
		case fabric.West:
			return fabric.Coord{Row: pad.Pos, Col: 0}
		default:
			return fabric.Coord{Row: pad.Pos, Col: r.dev.Cols - 1}
		}
	}
	c, _, _ := r.dev.SplitNode(n)
	return c
}

// heuristicPerTile underestimates the cheapest per-tile cost: a hex wire
// covers six tiles for 1.10 ns of wire delay plus the 0.01 per-hop bias, so
// no expansion can cover a tile for less. Keeping it tight keeps A* focused;
// keeping it a true lower bound keeps it admissible.
const heuristicPerTile = (1.10 + 0.01) / 6

// searchMargins are the staged bounding-box inflations of a sink search: the
// box spans the current tree and the sink, inflated by the margin. Most nets
// are short and resolve inside the first box at a fraction of the expansion
// cost of a whole-device search; a search that exhausts a box retries with
// the next inflation, and the final stage is unbounded, so reachability is
// never lost — only found later.
var searchMargins = [...]int{3, 9, -1}

// routeOne expands from the current net tree (stamped into treeAt by the
// caller) to one sink, inflating the search bounding box on failure.
// presentFactor scales the congestion penalty. Returns the path from a tree
// node to the sink, valid until the next search (it lives in reusable
// scratch).
func (r *Router) routeOne(seeds []fabric.NodeID, sink fabric.NodeID,
	netIdx int32, presentFactor float64, within *fabric.Rect) ([]fabric.NodeID, error) {
	for _, margin := range searchMargins {
		if path := r.searchOne(seeds, sink, netIdx, presentFactor, margin, within); path != nil {
			return path, nil
		}
	}
	return nil, fmt.Errorf("route: no path to sink %d", sink)
}

// searchOne is one bounded A* expansion; margin < 0 means unbounded. It
// returns nil when the open set exhausts without reaching the sink.
func (r *Router) searchOne(seeds []fabric.NodeID, sink fabric.NodeID,
	netIdx int32, presentFactor float64, margin int, within *fabric.Rect) []fabric.NodeID {

	// Pad sinks are reached through their candidate pre-pad wires.
	var prePad []fabric.NodeID
	target := sink
	sinkTile := r.tileOf(sink)
	if pad, ok := r.dev.PadOfNode(sink); ok {
		prePad = r.dev.PadOutSourceNodes(pad)
	}
	isPrePad := func(n fabric.NodeID) bool {
		for _, p := range prePad {
			if p == n {
				return true
			}
		}
		return false
	}

	// Bounding box over the tree's tiles and the sink, inflated by margin.
	bounded := margin >= 0
	minR, maxR := sinkTile.Row, sinkTile.Row
	minC, maxC := sinkTile.Col, sinkTile.Col
	if bounded {
		for _, n := range seeds {
			t := r.tileOf(n)
			if t.Row < minR {
				minR = t.Row
			}
			if t.Row > maxR {
				maxR = t.Row
			}
			if t.Col < minC {
				minC = t.Col
			}
			if t.Col > maxC {
				maxC = t.Col
			}
		}
		minR -= margin
		maxR += margin
		minC -= margin
		maxC += margin
	}

	hPerTile := heuristicPerTile
	if r.Greedy > 1 {
		hPerTile *= r.Greedy
	}
	r.searchEpoch++
	se := r.searchEpoch
	r.q = r.q[:0]
	for _, n := range seeds {
		r.q.push(item{node: n, cost: 0, est: float64(r.tileOf(n).ManhattanDist(sinkTile)) * hPerTile})
		r.best[n], r.bestAt[n] = 0, se
		r.prev[n], r.prevAt[n] = fabric.InvalidNode, se
	}

	reconstruct := func(from fabric.NodeID) []fabric.NodeID {
		path := r.pathBuf[:0]
		for n := from; n != fabric.InvalidNode; {
			path = append(path, n)
			if r.treeAt[n] == r.treeEpoch {
				break
			}
			if r.prevAt[n] != se {
				break
			}
			n = r.prev[n]
		}
		reverse(path)
		r.pathBuf = path
		return path
	}

	expand := func(cur fabric.NodeID, curCost float64, nxt fabric.NodeID) {
		// The target itself may be "in use" (an already-driven pin being
		// connected in PARALLEL — the relocation procedure's core move);
		// only intermediate nodes must be free.
		if r.blockedAt[nxt] == r.epoch && nxt != target {
			return
		}
		t := r.tileOf(nxt)
		if bounded && (t.Row < minR || t.Row > maxR || t.Col < minC || t.Col > maxC) {
			return
		}
		if within != nil && nxt != target && !within.Contains(t) {
			return
		}
		// Nodes owned by another net cost extra (negotiation) instead of
		// being forbidden outright.
		penalty := 0.0
		if o := r.ownerOf(nxt); o >= 0 && o != netIdx {
			penalty = presentFactor * (1 + float64(r.presentOf(nxt)))
		}
		c := curCost + nodeDelay(r.dev, nxt) + r.historyOf(nxt) + penalty + 0.01
		if r.bestAt[nxt] == se && r.best[nxt] <= c {
			return
		}
		r.best[nxt], r.bestAt[nxt] = c, se
		r.prev[nxt], r.prevAt[nxt] = cur, se
		est := c + float64(t.ManhattanDist(sinkTile))*hPerTile
		r.q.push(item{node: nxt, cost: c, est: est})
	}

	for len(r.q) > 0 {
		it := r.q.pop()
		if it.cost > r.best[it.node] {
			continue
		}
		if it.node == target {
			return reconstruct(it.node)
		}
		if isPrePad(it.node) {
			// One more hop into the pad.
			r.prev[target], r.prevAt[target] = it.node, se
			r.best[target], r.bestAt[target] = it.cost, se
			return reconstruct(target)
		}
		for _, nxt := range r.fanout(it.node) {
			expand(it.node, it.cost, nxt)
		}
	}
	return nil
}

func reverse(p []fabric.NodeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// RouteAll routes a set of nets with negotiated congestion and returns the
// routed trees. It fails if congestion cannot be resolved in MaxIters
// rounds.
func (r *Router) RouteAll(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, len(nets))
	presentFactor := 0.5

	for iter := 0; iter < r.MaxIters; iter++ {
		// (Re)route every net.
		for i := range nets {
			// Rip up previous route of this net.
			if routed[i].Tree != nil {
				for _, n := range routed[i].Tree {
					if r.addPresent(n, -1) == 0 {
						r.clearOwner(n)
					}
				}
			}
			rn, err := r.routeNet(nets[i], int32(i), presentFactor)
			if err != nil {
				return nil, fmt.Errorf("route: net %s: %w", nets[i].Name, err)
			}
			routed[i] = *rn
			for _, n := range rn.Tree {
				r.addPresent(n, 1)
				r.setOwner(n, int32(i))
			}
		}
		// Check for overuse (a node carrying 2+ nets).
		overused := 0
		for i := range routed {
			for _, n := range routed[i].Tree {
				if r.presentOf(n) > 1 {
					overused++
					r.addHistory(n, 0.5)
				}
			}
		}
		if overused == 0 {
			return routed, nil
		}
		presentFactor *= 1.8
	}
	return nil, fmt.Errorf("route: congestion unresolved after %d iterations", r.MaxIters)
}

// routeNet routes all sinks of one net as a Steiner-ish tree (each sink
// reuses the partial tree). The tree's structure lives in the epoch-stamped
// treePrev array — no per-node path copies — and the returned paths share
// one slab allocated for the caller, so routing cost is allocation-flat:
// proportional to the paths handed back, not to the search volume.
func (r *Router) routeNet(net Net, netIdx int32, presentFactor float64) (*RoutedNet, error) {
	if len(net.Sinks) == 0 {
		return nil, fmt.Errorf("net has no sinks")
	}
	rn := &RoutedNet{Net: net, Paths: make(map[fabric.NodeID][]fabric.NodeID, len(net.Sinks))}
	r.treeEpoch++
	r.treeAt[net.Source] = r.treeEpoch
	r.treePrev[net.Source] = fabric.InvalidNode
	seeds := append(r.seedBuf[:0], net.Source)
	rn.Tree = append(rn.Tree, net.Source)
	var within *fabric.Rect
	if net.Bound.Area() > 0 {
		within = &net.Bound
	}
	var slab []fabric.NodeID // backs every returned path; owned by the caller
	for _, sink := range net.Sinks {
		w := within
		if _, isPad := r.dev.PadOfNode(sink); isPad {
			w = nil // boundary branch: pads live outside any interior bound
		}
		seg, err := r.routeOne(seeds, sink, netIdx, presentFactor, w)
		if err != nil {
			r.seedBuf = seeds
			return nil, err
		}
		// seg starts at an existing tree node; graft the new suffix on. A
		// pad joins the tree (it is part of the net and must be blocked for
		// other nets) but never seeds later sinks: an output pad is a
		// terminal — a signal cannot re-enter the array through it, and a
		// search expanded from a pad seed would build exactly that
		// physically dead branch (pad -> border wire -> ... -> pin).
		for i := 1; i < len(seg); i++ {
			n := seg[i]
			if r.treeAt[n] != r.treeEpoch {
				r.treeAt[n] = r.treeEpoch
				r.treePrev[n] = seg[i-1]
				rn.Tree = append(rn.Tree, n)
				if n < r.dev.PadBase() {
					seeds = append(seeds, n)
				}
			}
		}
		// Full source-to-sink path: walk the tree predecessors. Appends may
		// grow the slab; earlier sub-slices keep their (already written)
		// backing array, so sharing is safe.
		start := len(slab)
		for n := sink; n != fabric.InvalidNode; n = r.treePrev[n] {
			slab = append(slab, n)
		}
		reverse(slab[start:])
		rn.Paths[sink] = slab[start:len(slab):len(slab)]
	}
	r.seedBuf = seeds
	return rn, nil
}

// RouteDisjoint routes nets one by one, treating every previously routed or
// blocked node as strictly off-limits (no sharing, no negotiation). The
// relocation engine uses it: transfer paths must use only free resources and
// must never perturb existing nets.
func (r *Router) RouteDisjoint(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, 0, len(nets))
	for i, net := range nets {
		rn, err := r.routeNet(net, int32(i), 0)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %w", net.Name, err)
		}
		// Hard-block the new tree for subsequent nets.
		for _, n := range rn.Tree {
			if n != net.Source {
				r.Block(n)
			}
		}
		routed = append(routed, *rn)
	}
	return routed, nil
}

// Apply enables the PIPs of routed nets in the device configuration
// (designer-level path; the relocation engine emits frame writes instead).
func Apply(dev *fabric.Device, nets []RoutedNet) error {
	for i := range nets {
		if err := ApplyNet(dev, &nets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyNet enables the PIPs along one routed net.
func ApplyNet(dev *fabric.Device, rn *RoutedNet) error {
	for _, path := range rn.Paths {
		for i := 1; i < len(path); i++ {
			if err := EnablePathPIP(dev, path[i-1], path[i]); err != nil {
				return fmt.Errorf("net %s: %w", rn.Name, err)
			}
		}
	}
	return nil
}

// EnablePathPIP turns on the PIP connecting src to dst (dst may be a tile
// sink or an output pad).
func EnablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask |= 1 << b
				pc.Output = true
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)|1<<bit)
	return nil
}

// DisablePathPIP turns off the PIP connecting src to dst.
func DisablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask &^= 1 << b
				if pc.OutMask == 0 {
					pc.Output = false
				}
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)&^(1<<bit))
	return nil
}
