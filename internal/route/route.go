// Package route implements signal routing over the fabric's programmable
// interconnect: an A*-based maze expansion with PathFinder-style negotiated
// congestion, plus path delay calculation. The relocation engine reuses the
// router to build replica connections out of free routing resources only, as
// the paper requires ("the temporary transfer paths ... use only free
// routing resources").
package route

import (
	"fmt"

	"repro/internal/fabric"
)

// Net is a routing request: one source node (cell output or input pad) and
// one or more sink nodes (cell input pins or output pads).
type Net struct {
	Name   string
	Source fabric.NodeID
	Sinks  []fabric.NodeID
}

// RoutedNet is a successfully routed net: a tree of nodes rooted at the
// source covering every sink.
type RoutedNet struct {
	Net
	// Paths maps each sink to its node sequence from source to sink
	// (inclusive on both ends).
	Paths map[fabric.NodeID][]fabric.NodeID
	// Tree is the union of all path nodes.
	Tree []fabric.NodeID
}

// DelayTo returns the propagation delay in nanoseconds from source to sink.
func (rn *RoutedNet) DelayTo(dev *fabric.Device, sink fabric.NodeID) float64 {
	return PathDelayNs(dev, rn.Paths[sink])
}

// PathDelayNs sums the wire delays along a node path.
func PathDelayNs(dev *fabric.Device, path []fabric.NodeID) float64 {
	total := 0.0
	for _, n := range path {
		total += nodeDelay(dev, n)
	}
	return total
}

func nodeDelay(dev *fabric.Device, n fabric.NodeID) float64 {
	if _, ok := dev.PadOfNode(n); ok {
		return fabric.WireDelayNs(fabric.KindPad)
	}
	_, local, ok := dev.SplitNode(n)
	if !ok {
		return 0
	}
	kind, _, _ := fabric.DecodeLocal(local)
	return fabric.WireDelayNs(kind)
}

// Router routes sets of nets over a device with negotiated congestion.
//
// A Router is built once and reused: all per-session state (blocked nodes,
// congestion history, usage counts) and all per-search state (the A* open
// set, cost and predecessor tables) live in epoch-stamped arrays indexed by
// NodeID, so Reset and every search start are O(1) instead of reallocating
// device-sized tables. The lazy fanout cache likewise persists across
// searches — relocation engines route thousands of nets over the same
// topology, and the cache warms exactly once.
type Router struct {
	dev *fabric.Device
	// MaxIters bounds the negotiation rounds.
	MaxIters int

	adj [][]fabric.NodeID // lazy fanout cache, indexed by NodeID

	// Session state, valid while its stamp equals epoch (Reset bumps the
	// epoch, invalidating everything at once).
	epoch     uint64
	blockedAt []uint64
	history   []float64 // PathFinder history cost
	historyAt []uint64
	present   []int32 // current usage count
	presentAt []uint64
	owner     []int32 // net index last routed over the node
	ownerAt   []uint64

	// Per-search state (one routeOne call), stamped with searchEpoch.
	searchEpoch uint64
	prev        []fabric.NodeID
	prevAt      []uint64
	best        []float64
	bestAt      []uint64

	// Per-net tree membership, stamped with treeEpoch.
	treeEpoch uint64
	treeAt    []uint64

	q pq // reusable open set
}

// NewRouter creates a router over a device.
func NewRouter(dev *fabric.Device) *Router {
	n := int(dev.PadBase()) + dev.NumPads()
	return &Router{
		dev:         dev,
		MaxIters:    40,
		adj:         make([][]fabric.NodeID, n),
		epoch:       1,
		blockedAt:   make([]uint64, n),
		history:     make([]float64, n),
		historyAt:   make([]uint64, n),
		present:     make([]int32, n),
		presentAt:   make([]uint64, n),
		owner:       make([]int32, n),
		ownerAt:     make([]uint64, n),
		searchEpoch: 1,
		prev:        make([]fabric.NodeID, n),
		prevAt:      make([]uint64, n),
		best:        make([]float64, n),
		bestAt:      make([]uint64, n),
		treeEpoch:   1,
		treeAt:      make([]uint64, n),
	}
}

// Reset returns the router to its freshly-constructed state — no blocked
// nodes, no congestion history — in O(1). Callers that previously built a
// new router per operation reuse one this way, keeping the fanout cache.
func (r *Router) Reset() { r.epoch++ }

// Block marks nodes as unusable (owned by other circuitry).
func (r *Router) Block(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		r.blockedAt[n] = r.epoch
	}
}

// Unblock releases nodes.
func (r *Router) Unblock(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		r.blockedAt[n] = 0
	}
}

// Blocked reports whether a node is blocked.
func (r *Router) Blocked(n fabric.NodeID) bool { return r.blockedAt[n] == r.epoch }

func (r *Router) historyOf(n fabric.NodeID) float64 {
	if r.historyAt[n] == r.epoch {
		return r.history[n]
	}
	return 0
}

func (r *Router) addHistory(n fabric.NodeID, d float64) {
	if r.historyAt[n] != r.epoch {
		r.historyAt[n] = r.epoch
		r.history[n] = 0
	}
	r.history[n] += d
}

func (r *Router) presentOf(n fabric.NodeID) int32 {
	if r.presentAt[n] == r.epoch {
		return r.present[n]
	}
	return 0
}

func (r *Router) addPresent(n fabric.NodeID, d int32) int32 {
	if r.presentAt[n] != r.epoch {
		r.presentAt[n] = r.epoch
		r.present[n] = 0
	}
	r.present[n] += d
	return r.present[n]
}

// ownerOf returns the owning net index, or -1 when unowned.
func (r *Router) ownerOf(n fabric.NodeID) int32 {
	if r.ownerAt[n] == r.epoch {
		return r.owner[n]
	}
	return -1
}

func (r *Router) setOwner(n fabric.NodeID, idx int32) {
	r.ownerAt[n] = r.epoch
	r.owner[n] = idx
}

func (r *Router) clearOwner(n fabric.NodeID) { r.ownerAt[n] = 0 }

func (r *Router) fanout(n fabric.NodeID) []fabric.NodeID {
	if cached := r.adj[n]; cached != nil {
		return cached
	}
	edges := r.dev.FanoutOf(n)
	out := make([]fabric.NodeID, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.Sink)
	}
	if out == nil {
		out = []fabric.NodeID{}
	}
	r.adj[n] = out
	return out
}

// item is a priority-queue entry.
type item struct {
	node fabric.NodeID
	cost float64
	est  float64
}

// pq is a typed binary min-heap on (est, node) — the node tie-break keeps
// expansion deterministic. Hand-rolled to avoid container/heap's interface
// boxing on every push and pop.
type pq []item

func pqLess(a, b item) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}

func (p *pq) push(it item) {
	*p = append(*p, it)
	q := *p
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (p *pq) pop() item {
	q := *p
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*p = q
	i := 0
	for {
		l, rgt := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && pqLess(q[l], q[smallest]) {
			smallest = l
		}
		if rgt < len(q) && pqLess(q[rgt], q[smallest]) {
			smallest = rgt
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// tileOf returns the coordinate used for the A* heuristic.
func (r *Router) tileOf(n fabric.NodeID) fabric.Coord {
	if pad, ok := r.dev.PadOfNode(n); ok {
		switch pad.Side {
		case fabric.North:
			return fabric.Coord{Row: 0, Col: pad.Pos}
		case fabric.South:
			return fabric.Coord{Row: r.dev.Rows - 1, Col: pad.Pos}
		case fabric.West:
			return fabric.Coord{Row: pad.Pos, Col: 0}
		default:
			return fabric.Coord{Row: pad.Pos, Col: r.dev.Cols - 1}
		}
	}
	c, _, _ := r.dev.SplitNode(n)
	return c
}

// heuristicPerTile underestimates the cheapest per-tile delay (hex wires
// cover six tiles for 1.1 ns), keeping A* admissible.
const heuristicPerTile = 1.1 / 6

// routeOne expands from the current net tree (stamped into treeAt by the
// caller) to one sink. presentFactor scales the congestion penalty. Returns
// the path from a tree node to the sink.
func (r *Router) routeOne(seeds []fabric.NodeID, sink fabric.NodeID,
	netIdx int32, presentFactor float64) ([]fabric.NodeID, error) {

	// Pad sinks are reached through their candidate pre-pad wires.
	var prePad []fabric.NodeID
	target := sink
	sinkTile := r.tileOf(sink)
	if pad, ok := r.dev.PadOfNode(sink); ok {
		prePad = r.dev.PadOutSourceNodes(pad)
	}
	isPrePad := func(n fabric.NodeID) bool {
		for _, p := range prePad {
			if p == n {
				return true
			}
		}
		return false
	}

	r.searchEpoch++
	se := r.searchEpoch
	r.q = r.q[:0]
	for _, n := range seeds {
		r.q.push(item{node: n, cost: 0, est: float64(r.tileOf(n).ManhattanDist(sinkTile)) * heuristicPerTile})
		r.best[n], r.bestAt[n] = 0, se
		r.prev[n], r.prevAt[n] = fabric.InvalidNode, se
	}

	reconstruct := func(from fabric.NodeID) []fabric.NodeID {
		var path []fabric.NodeID
		for n := from; n != fabric.InvalidNode; {
			path = append(path, n)
			if r.treeAt[n] == r.treeEpoch {
				break
			}
			if r.prevAt[n] != se {
				break
			}
			n = r.prev[n]
		}
		reverse(path)
		return path
	}

	expand := func(cur fabric.NodeID, curCost float64, nxt fabric.NodeID) {
		// The target itself may be "in use" (an already-driven pin being
		// connected in PARALLEL — the relocation procedure's core move);
		// only intermediate nodes must be free.
		if r.blockedAt[nxt] == r.epoch && nxt != target {
			return
		}
		// Nodes owned by another net cost extra (negotiation) instead of
		// being forbidden outright.
		penalty := 0.0
		if o := r.ownerOf(nxt); o >= 0 && o != netIdx {
			penalty = presentFactor * (1 + float64(r.presentOf(nxt)))
		}
		c := curCost + nodeDelay(r.dev, nxt) + r.historyOf(nxt) + penalty + 0.01
		if r.bestAt[nxt] == se && r.best[nxt] <= c {
			return
		}
		r.best[nxt], r.bestAt[nxt] = c, se
		r.prev[nxt], r.prevAt[nxt] = cur, se
		est := c + float64(r.tileOf(nxt).ManhattanDist(sinkTile))*heuristicPerTile
		r.q.push(item{node: nxt, cost: c, est: est})
	}

	for len(r.q) > 0 {
		it := r.q.pop()
		if it.cost > r.best[it.node] {
			continue
		}
		if it.node == target {
			return reconstruct(it.node), nil
		}
		if isPrePad(it.node) {
			// One more hop into the pad.
			r.prev[target], r.prevAt[target] = it.node, se
			r.best[target], r.bestAt[target] = it.cost, se
			return reconstruct(target), nil
		}
		for _, nxt := range r.fanout(it.node) {
			expand(it.node, it.cost, nxt)
		}
	}
	return nil, fmt.Errorf("route: no path to sink %d", sink)
}

func reverse(p []fabric.NodeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// RouteAll routes a set of nets with negotiated congestion and returns the
// routed trees. It fails if congestion cannot be resolved in MaxIters
// rounds.
func (r *Router) RouteAll(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, len(nets))
	presentFactor := 0.5

	for iter := 0; iter < r.MaxIters; iter++ {
		// (Re)route every net.
		for i := range nets {
			// Rip up previous route of this net.
			if routed[i].Tree != nil {
				for _, n := range routed[i].Tree {
					if r.addPresent(n, -1) == 0 {
						r.clearOwner(n)
					}
				}
			}
			rn, err := r.routeNet(nets[i], int32(i), presentFactor)
			if err != nil {
				return nil, fmt.Errorf("route: net %s: %w", nets[i].Name, err)
			}
			routed[i] = *rn
			for _, n := range rn.Tree {
				r.addPresent(n, 1)
				r.setOwner(n, int32(i))
			}
		}
		// Check for overuse (a node carrying 2+ nets).
		overused := 0
		for i := range routed {
			for _, n := range routed[i].Tree {
				if r.presentOf(n) > 1 {
					overused++
					r.addHistory(n, 0.5)
				}
			}
		}
		if overused == 0 {
			return routed, nil
		}
		presentFactor *= 1.8
	}
	return nil, fmt.Errorf("route: congestion unresolved after %d iterations", r.MaxIters)
}

// routeNet routes all sinks of one net as a Steiner-ish tree (each sink
// reuses the partial tree).
func (r *Router) routeNet(net Net, netIdx int32, presentFactor float64) (*RoutedNet, error) {
	if len(net.Sinks) == 0 {
		return nil, fmt.Errorf("net has no sinks")
	}
	rn := &RoutedNet{Net: net, Paths: map[fabric.NodeID][]fabric.NodeID{}}
	r.treeEpoch++
	r.treeAt[net.Source] = r.treeEpoch
	seeds := []fabric.NodeID{net.Source}
	// Track, for each tree node, the path from source to it so sink paths
	// can be stitched.
	toNode := map[fabric.NodeID][]fabric.NodeID{net.Source: {net.Source}}
	for _, sink := range net.Sinks {
		seg, err := r.routeOne(seeds, sink, netIdx, presentFactor)
		if err != nil {
			return nil, err
		}
		// seg starts at an existing tree node.
		root := seg[0]
		full := append(append([]fabric.NodeID{}, toNode[root]...), seg[1:]...)
		rn.Paths[sink] = full
		for i, n := range seg {
			if i == 0 {
				continue
			}
			if r.treeAt[n] != r.treeEpoch {
				r.treeAt[n] = r.treeEpoch
				seeds = append(seeds, n)
			}
			toNode[n] = full[:len(full)-(len(seg)-1-i)]
		}
	}
	rn.Tree = make([]fabric.NodeID, len(seeds))
	copy(rn.Tree, seeds)
	return rn, nil
}

// RouteDisjoint routes nets one by one, treating every previously routed or
// blocked node as strictly off-limits (no sharing, no negotiation). The
// relocation engine uses it: transfer paths must use only free resources and
// must never perturb existing nets.
func (r *Router) RouteDisjoint(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, 0, len(nets))
	for i, net := range nets {
		rn, err := r.routeNet(net, int32(i), 0)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %w", net.Name, err)
		}
		// Hard-block the new tree for subsequent nets.
		for _, n := range rn.Tree {
			if n != net.Source {
				r.Block(n)
			}
		}
		routed = append(routed, *rn)
	}
	return routed, nil
}

// Apply enables the PIPs of routed nets in the device configuration
// (designer-level path; the relocation engine emits frame writes instead).
func Apply(dev *fabric.Device, nets []RoutedNet) error {
	for i := range nets {
		if err := ApplyNet(dev, &nets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyNet enables the PIPs along one routed net.
func ApplyNet(dev *fabric.Device, rn *RoutedNet) error {
	for _, path := range rn.Paths {
		for i := 1; i < len(path); i++ {
			if err := EnablePathPIP(dev, path[i-1], path[i]); err != nil {
				return fmt.Errorf("net %s: %w", rn.Name, err)
			}
		}
	}
	return nil
}

// EnablePathPIP turns on the PIP connecting src to dst (dst may be a tile
// sink or an output pad).
func EnablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask |= 1 << b
				pc.Output = true
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)|1<<bit)
	return nil
}

// DisablePathPIP turns off the PIP connecting src to dst.
func DisablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask &^= 1 << b
				if pc.OutMask == 0 {
					pc.Output = false
				}
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)&^(1<<bit))
	return nil
}
