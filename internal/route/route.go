// Package route implements signal routing over the fabric's programmable
// interconnect: an A*-based maze expansion with PathFinder-style negotiated
// congestion, plus path delay calculation. The relocation engine reuses the
// router to build replica connections out of free routing resources only, as
// the paper requires ("the temporary transfer paths ... use only free
// routing resources").
package route

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// Net is a routing request: one source node (cell output or input pad) and
// one or more sink nodes (cell input pins or output pads).
type Net struct {
	Name   string
	Source fabric.NodeID
	Sinks  []fabric.NodeID
}

// RoutedNet is a successfully routed net: a tree of nodes rooted at the
// source covering every sink.
type RoutedNet struct {
	Net
	// Paths maps each sink to its node sequence from source to sink
	// (inclusive on both ends).
	Paths map[fabric.NodeID][]fabric.NodeID
	// Tree is the union of all path nodes.
	Tree []fabric.NodeID
}

// DelayTo returns the propagation delay in nanoseconds from source to sink.
func (rn *RoutedNet) DelayTo(dev *fabric.Device, sink fabric.NodeID) float64 {
	return PathDelayNs(dev, rn.Paths[sink])
}

// PathDelayNs sums the wire delays along a node path.
func PathDelayNs(dev *fabric.Device, path []fabric.NodeID) float64 {
	total := 0.0
	for _, n := range path {
		total += nodeDelay(dev, n)
	}
	return total
}

func nodeDelay(dev *fabric.Device, n fabric.NodeID) float64 {
	if _, ok := dev.PadOfNode(n); ok {
		return fabric.WireDelayNs(fabric.KindPad)
	}
	_, local, ok := dev.SplitNode(n)
	if !ok {
		return 0
	}
	kind, _, _ := fabric.DecodeLocal(local)
	return fabric.WireDelayNs(kind)
}

// Router routes sets of nets over a device with negotiated congestion.
type Router struct {
	dev *fabric.Device
	// Blocked nodes are off-limits (owned by other functions on the
	// device); the router never expands them.
	blocked map[fabric.NodeID]bool
	// MaxIters bounds the negotiation rounds.
	MaxIters int

	adj     [][]fabric.NodeID // lazy fanout cache, indexed by NodeID
	history []float64         // PathFinder history cost
	present []int             // current usage count
}

// NewRouter creates a router over a device.
func NewRouter(dev *fabric.Device) *Router {
	n := int(dev.PadBase()) + dev.NumPads()
	return &Router{
		dev:      dev,
		blocked:  make(map[fabric.NodeID]bool),
		MaxIters: 40,
		adj:      make([][]fabric.NodeID, n),
		history:  make([]float64, n),
		present:  make([]int, n),
	}
}

// Block marks nodes as unusable (owned by other circuitry).
func (r *Router) Block(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		r.blocked[n] = true
	}
}

// Unblock releases nodes.
func (r *Router) Unblock(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		delete(r.blocked, n)
	}
}

// Blocked reports whether a node is blocked.
func (r *Router) Blocked(n fabric.NodeID) bool { return r.blocked[n] }

func (r *Router) fanout(n fabric.NodeID) []fabric.NodeID {
	if cached := r.adj[n]; cached != nil {
		return cached
	}
	edges := r.dev.FanoutOf(n)
	out := make([]fabric.NodeID, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.Sink)
	}
	if out == nil {
		out = []fabric.NodeID{}
	}
	r.adj[n] = out
	return out
}

// item is a priority-queue entry.
type item struct {
	node fabric.NodeID
	cost float64
	est  float64
}

type pq []item

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].est != p[j].est {
		return p[i].est < p[j].est
	}
	return p[i].node < p[j].node // deterministic tie-break
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(item)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// tileOf returns the coordinate used for the A* heuristic.
func (r *Router) tileOf(n fabric.NodeID) fabric.Coord {
	if pad, ok := r.dev.PadOfNode(n); ok {
		switch pad.Side {
		case fabric.North:
			return fabric.Coord{Row: 0, Col: pad.Pos}
		case fabric.South:
			return fabric.Coord{Row: r.dev.Rows - 1, Col: pad.Pos}
		case fabric.West:
			return fabric.Coord{Row: pad.Pos, Col: 0}
		default:
			return fabric.Coord{Row: pad.Pos, Col: r.dev.Cols - 1}
		}
	}
	c, _, _ := r.dev.SplitNode(n)
	return c
}

// heuristicPerTile underestimates the cheapest per-tile delay (hex wires
// cover six tiles for 1.1 ns), keeping A* admissible.
const heuristicPerTile = 1.1 / 6

// routeOne expands from the current net tree to one sink. presentFactor
// scales the congestion penalty. Returns the path from a tree node to the
// sink.
func (r *Router) routeOne(treeNodes map[fabric.NodeID]bool, sink fabric.NodeID,
	owner map[fabric.NodeID]int, netIdx int, presentFactor float64) ([]fabric.NodeID, error) {

	// Pad sinks are reached through their candidate pre-pad wires.
	prePad := map[fabric.NodeID]bool{}
	target := sink
	sinkTile := r.tileOf(sink)
	if pad, ok := r.dev.PadOfNode(sink); ok {
		for _, n := range r.dev.PadOutSourceNodes(pad) {
			prePad[n] = true
		}
	}

	prev := map[fabric.NodeID]fabric.NodeID{}
	best := map[fabric.NodeID]float64{}
	seeds := make([]fabric.NodeID, 0, len(treeNodes))
	for n := range treeNodes {
		seeds = append(seeds, n)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	var q pq
	for _, n := range seeds {
		q = append(q, item{node: n, cost: 0, est: float64(r.tileOf(n).ManhattanDist(sinkTile)) * heuristicPerTile})
		best[n] = 0
		prev[n] = fabric.InvalidNode
	}
	heap.Init(&q)

	expand := func(cur fabric.NodeID, curCost float64, nxt fabric.NodeID) {
		// The target itself may be "in use" (an already-driven pin being
		// connected in PARALLEL — the relocation procedure's core move);
		// only intermediate nodes must be free.
		if r.blocked[nxt] && nxt != target {
			return
		}
		// Nodes owned by another net cost extra (negotiation) instead of
		// being forbidden outright.
		penalty := 0.0
		if o, used := owner[nxt]; used && o != netIdx {
			penalty = presentFactor * (1 + float64(r.present[nxt]))
		}
		c := curCost + nodeDelay(r.dev, nxt) + r.history[nxt] + penalty + 0.01
		if b, seen := best[nxt]; seen && b <= c {
			return
		}
		best[nxt] = c
		prev[nxt] = cur
		est := c + float64(r.tileOf(nxt).ManhattanDist(sinkTile))*heuristicPerTile
		heap.Push(&q, item{node: nxt, cost: c, est: est})
	}

	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		if it.cost > best[it.node] {
			continue
		}
		if it.node == target {
			// Reconstruct.
			var path []fabric.NodeID
			for n := it.node; n != fabric.InvalidNode; n = prev[n] {
				path = append(path, n)
				if treeNodes[n] {
					break
				}
			}
			reverse(path)
			return path, nil
		}
		if prePad[it.node] {
			// One more hop into the pad.
			prev[target] = it.node
			best[target] = it.cost
			var path []fabric.NodeID
			for n := target; n != fabric.InvalidNode; n = prev[n] {
				path = append(path, n)
				if treeNodes[n] {
					break
				}
			}
			reverse(path)
			return path, nil
		}
		for _, nxt := range r.fanout(it.node) {
			expand(it.node, it.cost, nxt)
		}
	}
	return nil, fmt.Errorf("route: no path to sink %d", sink)
}

func reverse(p []fabric.NodeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// RouteAll routes a set of nets with negotiated congestion and returns the
// routed trees. It fails if congestion cannot be resolved in MaxIters
// rounds.
func (r *Router) RouteAll(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, len(nets))
	owner := map[fabric.NodeID]int{} // node -> net index (last routed)
	presentFactor := 0.5

	for iter := 0; iter < r.MaxIters; iter++ {
		// (Re)route every net.
		for i := range nets {
			// Rip up previous route of this net.
			if routed[i].Tree != nil {
				for _, n := range routed[i].Tree {
					r.present[n]--
					if r.present[n] == 0 {
						delete(owner, n)
					}
				}
			}
			rn, err := r.routeNet(nets[i], owner, i, presentFactor)
			if err != nil {
				return nil, fmt.Errorf("route: net %s: %w", nets[i].Name, err)
			}
			routed[i] = *rn
			for _, n := range rn.Tree {
				r.present[n]++
				owner[n] = i
			}
		}
		// Check for overuse (a node carrying 2+ nets).
		overused := 0
		for i := range routed {
			for _, n := range routed[i].Tree {
				if r.present[n] > 1 {
					overused++
					r.history[n] += 0.5
				}
			}
		}
		if overused == 0 {
			return routed, nil
		}
		presentFactor *= 1.8
	}
	return nil, fmt.Errorf("route: congestion unresolved after %d iterations", r.MaxIters)
}

// routeNet routes all sinks of one net as a Steiner-ish tree (each sink
// reuses the partial tree).
func (r *Router) routeNet(net Net, owner map[fabric.NodeID]int, netIdx int, presentFactor float64) (*RoutedNet, error) {
	if len(net.Sinks) == 0 {
		return nil, fmt.Errorf("net has no sinks")
	}
	rn := &RoutedNet{Net: net, Paths: map[fabric.NodeID][]fabric.NodeID{}}
	tree := map[fabric.NodeID]bool{net.Source: true}
	// Track, for each tree node, the path from source to it so sink paths
	// can be stitched.
	toNode := map[fabric.NodeID][]fabric.NodeID{net.Source: {net.Source}}
	for _, sink := range net.Sinks {
		seg, err := r.routeOne(tree, sink, owner, netIdx, presentFactor)
		if err != nil {
			return nil, err
		}
		// seg starts at an existing tree node.
		root := seg[0]
		full := append(append([]fabric.NodeID{}, toNode[root]...), seg[1:]...)
		rn.Paths[sink] = full
		for i, n := range seg {
			if i == 0 {
				continue
			}
			tree[n] = true
			toNode[n] = full[:len(full)-(len(seg)-1-i)]
		}
	}
	rn.Tree = make([]fabric.NodeID, 0, len(tree))
	for n := range tree {
		rn.Tree = append(rn.Tree, n)
	}
	return rn, nil
}

// RouteDisjoint routes nets one by one, treating every previously routed or
// blocked node as strictly off-limits (no sharing, no negotiation). The
// relocation engine uses it: transfer paths must use only free resources and
// must never perturb existing nets.
func (r *Router) RouteDisjoint(nets []Net) ([]RoutedNet, error) {
	routed := make([]RoutedNet, 0, len(nets))
	for i, net := range nets {
		rn, err := r.routeNet(net, map[fabric.NodeID]int{}, i, 0)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %w", net.Name, err)
		}
		// Hard-block the new tree for subsequent nets.
		for _, n := range rn.Tree {
			if n != net.Source {
				r.Block(n)
			}
		}
		routed = append(routed, *rn)
	}
	return routed, nil
}

// Apply enables the PIPs of routed nets in the device configuration
// (designer-level path; the relocation engine emits frame writes instead).
func Apply(dev *fabric.Device, nets []RoutedNet) error {
	for i := range nets {
		if err := ApplyNet(dev, &nets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyNet enables the PIPs along one routed net.
func ApplyNet(dev *fabric.Device, rn *RoutedNet) error {
	for _, path := range rn.Paths {
		for i := 1; i < len(path); i++ {
			if err := EnablePathPIP(dev, path[i-1], path[i]); err != nil {
				return fmt.Errorf("net %s: %w", rn.Name, err)
			}
		}
	}
	return nil
}

// EnablePathPIP turns on the PIP connecting src to dst (dst may be a tile
// sink or an output pad).
func EnablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask |= 1 << b
				pc.Output = true
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)|1<<bit)
	return nil
}

// DisablePathPIP turns off the PIP connecting src to dst.
func DisablePathPIP(dev *fabric.Device, src, dst fabric.NodeID) error {
	if pad, ok := dev.PadOfNode(dst); ok {
		srcs := dev.PadOutSourceNodes(pad)
		for b, n := range srcs {
			if n == src {
				pc := dev.ReadPad(pad)
				pc.OutMask &^= 1 << b
				if pc.OutMask == 0 {
					pc.Output = false
				}
				dev.WritePad(pad, pc)
				return nil
			}
		}
		return fmt.Errorf("node %d does not feed pad %v", src, pad)
	}
	c, local, ok := dev.SplitNode(dst)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("node %d is not a configurable sink", dst)
	}
	bit, ok := dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("no PIP from %d to %d", src, dst)
	}
	dev.SetPIPMask(c, local, dev.PIPMask(c, local)&^(1<<bit))
	return nil
}
