package route

import (
	"testing"

	"repro/internal/fabric"
)

func BenchmarkRouteAcrossDevice(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	src := dev.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	sink := dev.NodeIDAt(fabric.Coord{Row: 25, Col: 39}, fabric.LocalPinI(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRouter(dev)
		if _, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteFanout16(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	src := dev.NodeIDAt(fabric.Coord{Row: 14, Col: 20}, fabric.LocalOutXQ(0))
	var sinks []fabric.NodeID
	for i := 0; i < 16; i++ {
		sinks = append(sinks, dev.NodeIDAt(
			fabric.Coord{Row: 6 + (i%4)*5, Col: 8 + (i/4)*8}, fabric.LocalPinI(i%4, i/4%4)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRouter(dev)
		if _, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: sinks}}); err != nil {
			b.Fatal(err)
		}
	}
}
