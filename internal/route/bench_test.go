package route

import (
	"testing"

	"repro/internal/fabric"
)

func BenchmarkRouteAcrossDevice(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	src := dev.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	sink := dev.NodeIDAt(fabric.Coord{Row: 25, Col: 39}, fabric.LocalPinI(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRouter(dev)
		if _, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{sink}}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteFanout16(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	src := dev.NodeIDAt(fabric.Coord{Row: 14, Col: 20}, fabric.LocalOutXQ(0))
	var sinks []fabric.NodeID
	for i := 0; i < 16; i++ {
		sinks = append(sinks, dev.NodeIDAt(
			fabric.Coord{Row: 6 + (i%4)*5, Col: 8 + (i/4)*8}, fabric.LocalPinI(i%4, i/4%4)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRouter(dev)
		if _, err := r.RouteAll([]Net{{Name: "n", Source: src, Sinks: sinks}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteAll is the router-only gate bench for the bounded-search
// work: a mixed net set (one cross-device net, one moderate fanout, several
// short local nets — the relocation engine's typical mix) routed on ONE
// reused router. B/op and allocs/op pin the allocation-flat property: the
// per-iteration allocations must track the returned paths, not the search
// volume.
func BenchmarkRouteAll(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	r := NewRouter(dev)
	nets := []Net{
		{Name: "cross", Source: dev.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0)),
			Sinks: []fabric.NodeID{dev.NodeIDAt(fabric.Coord{Row: 25, Col: 39}, fabric.LocalPinI(1, 1))}},
		{Name: "fan", Source: dev.NodeIDAt(fabric.Coord{Row: 14, Col: 20}, fabric.LocalOutXQ(0)),
			Sinks: []fabric.NodeID{
				dev.NodeIDAt(fabric.Coord{Row: 10, Col: 16}, fabric.LocalPinI(0, 0)),
				dev.NodeIDAt(fabric.Coord{Row: 18, Col: 24}, fabric.LocalPinI(1, 2)),
				dev.NodeIDAt(fabric.Coord{Row: 12, Col: 26}, fabric.LocalPinI(2, 1)),
			}},
		{Name: "loc1", Source: dev.NodeIDAt(fabric.Coord{Row: 5, Col: 5}, fabric.LocalOutX(1)),
			Sinks: []fabric.NodeID{dev.NodeIDAt(fabric.Coord{Row: 7, Col: 6}, fabric.LocalPinI(0, 3))}},
		{Name: "loc2", Source: dev.NodeIDAt(fabric.Coord{Row: 20, Col: 8}, fabric.LocalOutXQ(2)),
			Sinks: []fabric.NodeID{dev.NodeIDAt(fabric.Coord{Row: 21, Col: 10}, fabric.LocalPinBX(1))}},
		{Name: "loc3", Source: dev.NodeIDAt(fabric.Coord{Row: 9, Col: 30}, fabric.LocalOutX(3)),
			Sinks: []fabric.NodeID{dev.NodeIDAt(fabric.Coord{Row: 8, Col: 33}, fabric.LocalPinCE(2))}},
	}
	// Warm the lazy fanout cache (a one-time cost in real use: engines keep
	// one router for their lifetime) so the measured loop shows the
	// steady-state allocation behaviour.
	if _, err := r.RouteAll(nets); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset()
		if _, err := r.RouteAll(nets); err != nil {
			b.Fatal(err)
		}
	}
}
