package workload

import (
	"math"
	"testing"
)

func TestStreamBasicProperties(t *testing.T) {
	cfg := Config{
		Seed: 3, N: 500, MeanInterarrival: 2.0, MeanService: 5.0,
		MinSide: 2, MaxSide: 8, Dist: Uniform,
	}
	tasks := Stream(cfg)
	if len(tasks) != 500 {
		t.Fatalf("len = %d", len(tasks))
	}
	prev := 0.0
	for i, tk := range tasks {
		if tk.ID != i+1 {
			t.Fatalf("task %d has id %d", i, tk.ID)
		}
		if tk.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = tk.Arrival
		if tk.Service <= 0 {
			t.Fatal("non-positive service")
		}
		if tk.H < 2 || tk.H > 8 || tk.W < 2 || tk.W > 8 {
			t.Fatalf("size %dx%d out of bounds", tk.H, tk.W)
		}
	}
}

func TestExponentialMeans(t *testing.T) {
	cfg := Config{
		Seed: 9, N: 4000, MeanInterarrival: 2.0, MeanService: 5.0,
		MinSide: 1, MaxSide: 1,
	}
	tasks := Stream(cfg)
	// Mean interarrival ~ 2.0 (law of large numbers, generous tolerance).
	meanIA := tasks[len(tasks)-1].Arrival / float64(len(tasks))
	if math.Abs(meanIA-2.0) > 0.2 {
		t.Errorf("mean interarrival = %.3f, want ~2.0", meanIA)
	}
	sum := 0.0
	for _, tk := range tasks {
		sum += tk.Service
	}
	if meanS := sum / float64(len(tasks)); math.Abs(meanS-5.0) > 0.5 {
		t.Errorf("mean service = %.3f, want ~5.0", meanS)
	}
}

func TestBimodalSkew(t *testing.T) {
	cfg := Config{
		Seed: 5, N: 3000, MeanInterarrival: 1, MeanService: 1,
		MinSide: 2, MaxSide: 10, Dist: Bimodal,
	}
	small, big := 0, 0
	for _, tk := range Stream(cfg) {
		if tk.H <= 5 {
			small++
		}
		if tk.H >= 8 {
			big++
		}
	}
	if small <= big {
		t.Errorf("bimodal should skew small: small=%d big=%d", small, big)
	}
	if big == 0 {
		t.Error("bimodal produced no large tasks")
	}
}

func TestRepeatPool(t *testing.T) {
	cfg := Config{
		Seed: 11, N: 400, MeanInterarrival: 2, MeanService: 5,
		MinSide: 2, MaxSide: 6, RepeatPool: 5,
	}
	tasks := Stream(cfg)
	type combo struct {
		h, w int
		seed uint64
	}
	distinct := map[combo]int{}
	for _, tk := range tasks {
		distinct[combo{tk.H, tk.W, tk.Profile.Seed}]++
	}
	if len(distinct) > 5 {
		t.Fatalf("pool of 5 produced %d distinct (shape, circuit) combos", len(distinct))
	}
	if len(distinct) < 2 {
		t.Fatalf("pool degenerated to %d combos", len(distinct))
	}
	// Deterministic: same config, same stream.
	again := Stream(cfg)
	for i := range tasks {
		if tasks[i] != again[i] {
			t.Fatal("repeat-pool stream not deterministic")
		}
	}
	// Arrivals stay monotone and sizes stay in bounds.
	prev := 0.0
	for _, tk := range tasks {
		if tk.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = tk.Arrival
		if tk.H < 2 || tk.H > 6 || tk.W < 2 || tk.W > 6 {
			t.Fatalf("size %dx%d out of bounds", tk.H, tk.W)
		}
	}
	// The pool knob must not perturb pool-off streams: zero-value config
	// reproduces the same stream whether or not the field exists.
	off := cfg
	off.RepeatPool = 0
	a, b := Stream(off), Stream(off)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pool-off stream not deterministic")
		}
	}
}

func TestFlowsStructure(t *testing.T) {
	apps := Flows(FlowConfig{
		Seed: 2, Apps: 4, FnsPerApp: 5, MinSide: 3, MaxSide: 6, MeanDuration: 10,
	})
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	for _, a := range apps {
		if len(a.Functions) != 5 {
			t.Fatalf("app %s has %d functions", a.Name, len(a.Functions))
		}
		for _, f := range a.Functions {
			if f.H < 3 || f.H > 6 || f.W < 3 || f.W > 6 {
				t.Fatalf("fn %s size %dx%d", f.Name, f.H, f.W)
			}
			if f.Duration <= 0 {
				t.Fatalf("fn %s duration %f", f.Name, f.Duration)
			}
		}
	}
}

func TestFlowDeterminism(t *testing.T) {
	a := Flows(FlowConfig{Seed: 7, Apps: 3, FnsPerApp: 4, MinSide: 2, MaxSide: 5, MeanDuration: 8})
	b := Flows(FlowConfig{Seed: 7, Apps: 3, FnsPerApp: 4, MinSide: 2, MaxSide: 5, MeanDuration: 8})
	for i := range a {
		for j := range a[i].Functions {
			if a[i].Functions[j] != b[i].Functions[j] {
				t.Fatal("flows not deterministic")
			}
		}
	}
}
