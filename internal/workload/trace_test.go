package workload

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// encodeUnchecked bypasses the writer's validation, standing in for a trace
// produced by a foreign (or buggy) tool.
func encodeUnchecked(w io.Writer, tr *Trace) error {
	return json.NewEncoder(w).Encode(tr)
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := Config{Seed: 11, N: 20, MeanInterarrival: 1, MeanService: 5, MinSide: 2, MaxSide: 6, GatedFraction: 0.3, RAMFraction: 0.2}
	tasks := Stream(cfg)
	path := filepath.Join(t.TempDir(), "stream.trace")
	if err := SaveTrace(path, NewTrace("unit", &cfg, tasks)); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Magic != TraceMagic || tr.Version != TraceVersion || tr.Label != "unit" {
		t.Fatalf("envelope = %q v%d %q", tr.Magic, tr.Version, tr.Label)
	}
	if tr.Config == nil || *tr.Config != cfg {
		t.Fatalf("config = %+v, want %+v", tr.Config, cfg)
	}
	if !reflect.DeepEqual(tr.Tasks, tasks) {
		t.Fatal("tasks did not survive the round trip")
	}
}

func TestTraceTypedErrors(t *testing.T) {
	dir := t.TempDir()
	mustSaveRaw := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		return path
	}
	t.Run("not-json", func(t *testing.T) {
		if _, err := LoadTrace(mustSaveRaw("garbage", "not a trace")); !errors.Is(err, ErrTraceMagic) {
			t.Errorf("err = %v, want ErrTraceMagic", err)
		}
	})
	t.Run("wrong-magic", func(t *testing.T) {
		if _, err := ReadTrace(strings.NewReader(`{"magic":"something-else","version":1}`)); !errors.Is(err, ErrTraceMagic) {
			t.Errorf("err = %v, want ErrTraceMagic", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		in := `{"magic":"` + TraceMagic + `","version":99}`
		if _, err := ReadTrace(strings.NewReader(in)); !errors.Is(err, ErrTraceVersion) {
			t.Errorf("err = %v, want ErrTraceVersion", err)
		}
	})
	bad := []struct {
		name  string
		tasks []Task
	}{
		{"zero-region", []Task{{ID: 0, Service: 1, H: 0, W: 2}}},
		{"no-service", []Task{{ID: 0, Service: 0, H: 2, W: 2}}},
		{"arrivals-backwards", []Task{
			{ID: 0, Arrival: 5, Service: 1, H: 2, W: 2},
			{ID: 1, Arrival: 1, Service: 1, H: 2, W: 2},
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			// The writer refuses to produce a malformed trace...
			err := SaveTrace(filepath.Join(dir, tc.name), NewTrace("bad", nil, tc.tasks))
			if !errors.Is(err, ErrTraceMalformed) {
				t.Errorf("save err = %v, want ErrTraceMalformed", err)
			}
			// ...and the reader refuses one written by hand.
			var sb strings.Builder
			tr := NewTrace("bad", nil, tc.tasks)
			if err := encodeUnchecked(&sb, tr); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadTrace(strings.NewReader(sb.String())); !errors.Is(err, ErrTraceMalformed) {
				t.Errorf("read err = %v, want ErrTraceMalformed", err)
			}
		})
	}
}

func TestMergeTraces(t *testing.T) {
	a := NewTrace("a", nil, Stream(Config{Seed: 1, N: 10, MeanInterarrival: 2, MeanService: 5, MinSide: 2, MaxSide: 4}))
	b := NewTrace("b", nil, Stream(Config{Seed: 2, N: 15, MeanInterarrival: 1, MeanService: 4, MinSide: 2, MaxSide: 4}))
	m, err := MergeTraces(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != 25 {
		t.Fatalf("merged %d tasks, want 25", len(m.Tasks))
	}
	if m.Config != nil {
		t.Error("merged trace kept a generator config")
	}
	prev := -1.0
	for i, tk := range m.Tasks {
		if tk.ID != i {
			t.Fatalf("task %d renumbered to %d", i, tk.ID)
		}
		if tk.Arrival < prev {
			t.Fatalf("task %d arrives at %g after %g", i, tk.Arrival, prev)
		}
		prev = tk.Arrival
	}
	// The merged trace is itself a valid trace.
	path := filepath.Join(t.TempDir(), "merged.trace")
	if err := SaveTrace(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeTraces(); !errors.Is(err, ErrTraceMalformed) {
		t.Errorf("empty merge err = %v, want ErrTraceMalformed", err)
	}
}
