// Package workload generates synthetic task streams and application flows
// for the run-time management experiments: on-line task arrivals of varying
// footprint (the fragmentation stress of the paper's §1) and multi-function
// application chains like the paper's Fig. 1.
package workload

import "math"

// Task is one hardware function request: it needs an H x W CLB region for
// Service seconds, arriving at Arrival.
type Task struct {
	ID      int
	Arrival float64
	Service float64
	H, W    int
}

// rng is a splitmix64 generator (stable across Go releases).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// exp draws an exponential variate with the given mean.
func (r *rng) exp(mean float64) float64 {
	u := r.float()
	for u == 0 {
		u = r.float()
	}
	return -mean * math.Log(u)
}

// SizeDist selects the task footprint distribution.
type SizeDist uint8

const (
	// Uniform draws H and W uniformly in [MinSide, MaxSide].
	Uniform SizeDist = iota
	// Bimodal mixes small (MinSide) and large (MaxSide) tasks 70/30 —
	// the mix that fragments the grid fastest.
	Bimodal
)

// Config parameterises task-stream generation.
type Config struct {
	Seed             uint64
	N                int
	MeanInterarrival float64
	MeanService      float64
	MinSide, MaxSide int
	Dist             SizeDist
}

// Stream generates a task stream.
func Stream(cfg Config) []Task {
	r := &rng{s: cfg.Seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
	if cfg.MinSide < 1 {
		cfg.MinSide = 1
	}
	if cfg.MaxSide < cfg.MinSide {
		cfg.MaxSide = cfg.MinSide
	}
	tasks := make([]Task, cfg.N)
	t := 0.0
	for i := range tasks {
		t += r.exp(cfg.MeanInterarrival)
		h, w := cfg.drawSize(r)
		tasks[i] = Task{
			ID:      i + 1,
			Arrival: t,
			Service: r.exp(cfg.MeanService),
			H:       h,
			W:       w,
		}
	}
	return tasks
}

func (cfg Config) drawSize(r *rng) (int, int) {
	span := cfg.MaxSide - cfg.MinSide + 1
	switch cfg.Dist {
	case Bimodal:
		if r.float() < 0.7 {
			small := cfg.MinSide + r.intn(1+span/3)
			return clampSide(small, cfg), clampSide(cfg.MinSide+r.intn(1+span/3), cfg)
		}
		big := cfg.MaxSide - r.intn(1+span/3)
		return clampSide(big, cfg), clampSide(cfg.MaxSide-r.intn(1+span/3), cfg)
	default:
		return cfg.MinSide + r.intn(span), cfg.MinSide + r.intn(span)
	}
}

func clampSide(v int, cfg Config) int {
	if v < cfg.MinSide {
		return cfg.MinSide
	}
	if v > cfg.MaxSide {
		return cfg.MaxSide
	}
	return v
}

// Fn is one function in an application's chain (paper Fig. 1: functions
// A1, A2, ... executed predominantly sequentially).
type Fn struct {
	Name     string
	H, W     int
	Duration float64
}

// App is a chain of functions executed back to back; the run-time manager
// tries to configure function i+1 while function i is still running (the
// reconfiguration interval rt of Fig. 1).
type App struct {
	Name      string
	Functions []Fn
}

// FlowConfig parameterises application-flow generation.
type FlowConfig struct {
	Seed         uint64
	Apps         int
	FnsPerApp    int
	MinSide      int
	MaxSide      int
	MeanDuration float64
}

// Flows generates application chains.
func Flows(cfg FlowConfig) []App {
	r := &rng{s: cfg.Seed*0x6C62272E07BB0142 + 5}
	apps := make([]App, cfg.Apps)
	for a := range apps {
		apps[a].Name = string(rune('A' + a%26))
		for f := 0; f < cfg.FnsPerApp; f++ {
			span := cfg.MaxSide - cfg.MinSide + 1
			apps[a].Functions = append(apps[a].Functions, Fn{
				Name:     apps[a].Name + string(rune('1'+f%9)),
				H:        cfg.MinSide + r.intn(span),
				W:        cfg.MinSide + r.intn(span),
				Duration: 0.5*cfg.MeanDuration + r.exp(cfg.MeanDuration*0.5),
			})
		}
	}
	return apps
}
