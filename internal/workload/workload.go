// Package workload generates synthetic task streams and application flows
// for the run-time management experiments: on-line task arrivals of varying
// footprint (the fragmentation stress of the paper's §1) and multi-function
// application chains like the paper's Fig. 1.
//
// Each task also carries a design Profile — the circuit it implements when
// the scheduler runs in fabric mode: sequential style (free-running /
// gated-clock), LUT/FF fill-factor target, distributed-RAM usage and I/O
// counts, all drawn from configurable distributions. Profiles are drawn
// from an rng stream separate from the arrival/size stream, so enabling
// them never perturbs an existing task stream.
package workload

import (
	"math"

	"repro/internal/itc99"
)

// Task is one hardware function request: it needs an H x W CLB region for
// Service seconds, arriving at Arrival, and implements the design described
// by Profile when the scheduler drives a real fabric.
type Task struct {
	ID      int
	Arrival float64
	Service float64
	H, W    int
	Profile Profile
}

// Profile describes the design a task implements: the knobs the paper's
// relocation procedure cares about (sequential style, clock gating,
// distributed RAM) plus how densely the task fills its allocated region.
type Profile struct {
	// Style is the sequential design style (free-running or gated-clock;
	// the async latch style is exercised by dedicated tests, not streams).
	Style itc99.Style
	// FillFactor is the target fraction of the allocated region's logic
	// cells the design occupies (0 = the 0.35 default).
	FillFactor float64
	// CEFraction is the fraction of FFs that are clock-gated (GatedClock
	// style only).
	CEFraction float64
	// RAMs is the number of 16x1 distributed RAMs — cells the relocation
	// engine must refuse to move, and whose columns no relocation may
	// touch, so RAM tasks pin fabric behaviour away from the book-keeping
	// model.
	RAMs int
	// Inputs and Outputs are the primary I/O counts.
	Inputs, Outputs int
	// Seed drives the deterministic circuit generator for this task.
	Seed uint64
}

// GenConfig maps the task's profile onto the circuit generator, sized to
// its allocated region's logic-cell capacity (rect CLBs x cells per CLB).
// Zero-valued profile fields fall back to the fixed-shape defaults so
// legacy streams remain loadable.
func (t Task) GenConfig(name string, capacityCells int) itc99.GenConfig {
	p := t.Profile
	if p.Inputs == 0 {
		p.Inputs = 2
	}
	if p.Outputs == 0 {
		p.Outputs = 2
	}
	seed := p.Seed
	if seed == 0 {
		seed = uint64(t.ID)
	}
	cfg := itc99.GenConfig{
		Name:       name,
		Inputs:     p.Inputs,
		Outputs:    p.Outputs,
		Seed:       seed,
		Style:      p.Style,
		CEFraction: p.CEFraction,
		RAMs:       p.RAMs,
	}
	return cfg.SizedTo(capacityCells, p.FillFactor)
}

// rng is a splitmix64 generator (stable across Go releases).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// exp draws an exponential variate with the given mean.
func (r *rng) exp(mean float64) float64 {
	u := r.float()
	for u == 0 {
		u = r.float()
	}
	return -mean * math.Log(u)
}

// SizeDist selects the task footprint distribution.
type SizeDist uint8

const (
	// Uniform draws H and W uniformly in [MinSide, MaxSide].
	Uniform SizeDist = iota
	// Bimodal mixes small (MinSide) and large (MaxSide) tasks 70/30 —
	// the mix that fragments the grid fastest.
	Bimodal
)

// Config parameterises task-stream generation.
type Config struct {
	Seed             uint64
	N                int
	MeanInterarrival float64
	MeanService      float64
	MinSide, MaxSide int
	Dist             SizeDist

	// Design-profile knobs. Profiles are drawn from a separate rng stream,
	// so these knobs never change the arrival/size sequence above.

	// GatedFraction is the probability a task is a gated-clock design
	// (relocating its cells needs the paper's auxiliary-circuit flow).
	GatedFraction float64
	// CEFraction is the per-design fraction of clock-gated FFs for gated
	// tasks (0 = the 0.75 default, matching the ITC'99 suite mapping).
	CEFraction float64
	// RAMFraction is the probability a task instantiates distributed RAM;
	// such tasks cannot be relocated on-line at all.
	RAMFraction float64
	// MaxRAMs caps the RAM count of a RAM task (0 = default 2).
	MaxRAMs int
	// FillMin/FillMax bound the per-task fill-factor target (both 0 =
	// default 0.25..0.40 — dense enough to stress routing, sparse enough
	// that a sound generator always places).
	FillMin, FillMax float64
	// MinIO/MaxIO bound the primary input and output counts (0 = 2..4).
	MinIO, MaxIO int

	// RepeatPool, when positive, draws that many (H, W, profile) combos up
	// front and assigns every task one of them instead of a fresh draw:
	// the repeat-heavy regime where a template cache pays off, since tasks
	// sharing a pool entry share a circuit (same generator seed) and a
	// region shape. Zero keeps streams byte-identical to earlier seeds.
	RepeatPool int
}

// profileDefaults fills zero-valued profile knobs.
func (cfg Config) profileDefaults() Config {
	if cfg.CEFraction == 0 {
		cfg.CEFraction = 0.75
	}
	if cfg.MaxRAMs == 0 {
		cfg.MaxRAMs = 2
	}
	if cfg.FillMin == 0 && cfg.FillMax == 0 {
		cfg.FillMin, cfg.FillMax = 0.25, 0.40
	}
	if cfg.FillMax < cfg.FillMin {
		cfg.FillMax = cfg.FillMin
	}
	if cfg.MinIO == 0 {
		cfg.MinIO = 2
	}
	if cfg.MaxIO < cfg.MinIO {
		cfg.MaxIO = cfg.MinIO + 2
	}
	return cfg
}

// drawProfile draws one task's design profile from the profile rng stream.
func (cfg Config) drawProfile(r *rng) Profile {
	p := Profile{
		Style:      itc99.FreeRunning,
		FillFactor: cfg.FillMin + r.float()*(cfg.FillMax-cfg.FillMin),
		Inputs:     cfg.MinIO + r.intn(cfg.MaxIO-cfg.MinIO+1),
		Outputs:    cfg.MinIO + r.intn(cfg.MaxIO-cfg.MinIO+1),
		Seed:       r.next(),
	}
	if r.float() < cfg.GatedFraction {
		p.Style = itc99.GatedClock
		p.CEFraction = cfg.CEFraction
	}
	if r.float() < cfg.RAMFraction {
		p.RAMs = 1 + r.intn(cfg.MaxRAMs)
	}
	return p
}

// Stream generates a task stream.
func Stream(cfg Config) []Task {
	r := &rng{s: cfg.Seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
	// Profiles draw from their own stream so profile knobs (and the draws
	// themselves) cannot perturb arrival/size sequences of existing seeds.
	pr := &rng{s: cfg.Seed*0x6A09E667F3BCC909 + 0x3C6EF372FE94F82B}
	if cfg.MinSide < 1 {
		cfg.MinSide = 1
	}
	if cfg.MaxSide < cfg.MinSide {
		cfg.MaxSide = cfg.MinSide
	}
	pcfg := cfg.profileDefaults()
	tasks := make([]Task, cfg.N)
	t := 0.0
	if cfg.RepeatPool > 0 {
		// Repeat-heavy regime: pool entries (shape + profile, hence circuit)
		// are drawn once from the profile stream, then tasks pick from the
		// pool. Arrival and service times still come from the arrival stream.
		type combo struct {
			h, w int
			p    Profile
		}
		pool := make([]combo, cfg.RepeatPool)
		for i := range pool {
			h, w := cfg.drawSize(pr)
			pool[i] = combo{h: h, w: w, p: pcfg.drawProfile(pr)}
		}
		for i := range tasks {
			t += r.exp(cfg.MeanInterarrival)
			c := pool[pr.intn(len(pool))]
			tasks[i] = Task{
				ID:      i + 1,
				Arrival: t,
				Service: r.exp(cfg.MeanService),
				H:       c.h,
				W:       c.w,
				Profile: c.p,
			}
		}
		return tasks
	}
	for i := range tasks {
		t += r.exp(cfg.MeanInterarrival)
		h, w := cfg.drawSize(r)
		tasks[i] = Task{
			ID:      i + 1,
			Arrival: t,
			Service: r.exp(cfg.MeanService),
			H:       h,
			W:       w,
			Profile: pcfg.drawProfile(pr),
		}
	}
	return tasks
}

func (cfg Config) drawSize(r *rng) (int, int) {
	span := cfg.MaxSide - cfg.MinSide + 1
	switch cfg.Dist {
	case Bimodal:
		if r.float() < 0.7 {
			small := cfg.MinSide + r.intn(1+span/3)
			return clampSide(small, cfg), clampSide(cfg.MinSide+r.intn(1+span/3), cfg)
		}
		big := cfg.MaxSide - r.intn(1+span/3)
		return clampSide(big, cfg), clampSide(cfg.MaxSide-r.intn(1+span/3), cfg)
	default:
		return cfg.MinSide + r.intn(span), cfg.MinSide + r.intn(span)
	}
}

func clampSide(v int, cfg Config) int {
	if v < cfg.MinSide {
		return cfg.MinSide
	}
	if v > cfg.MaxSide {
		return cfg.MaxSide
	}
	return v
}

// Fn is one function in an application's chain (paper Fig. 1: functions
// A1, A2, ... executed predominantly sequentially).
type Fn struct {
	Name     string
	H, W     int
	Duration float64
}

// App is a chain of functions executed back to back; the run-time manager
// tries to configure function i+1 while function i is still running (the
// reconfiguration interval rt of Fig. 1).
type App struct {
	Name      string
	Functions []Fn
}

// FlowConfig parameterises application-flow generation.
type FlowConfig struct {
	Seed         uint64
	Apps         int
	FnsPerApp    int
	MinSide      int
	MaxSide      int
	MeanDuration float64
}

// Flows generates application chains.
func Flows(cfg FlowConfig) []App {
	r := &rng{s: cfg.Seed*0x6C62272E07BB0142 + 5}
	apps := make([]App, cfg.Apps)
	for a := range apps {
		apps[a].Name = string(rune('A' + a%26))
		for f := 0; f < cfg.FnsPerApp; f++ {
			span := cfg.MaxSide - cfg.MinSide + 1
			apps[a].Functions = append(apps[a].Functions, Fn{
				Name:     apps[a].Name + string(rune('1'+f%9)),
				H:        cfg.MinSide + r.intn(span),
				W:        cfg.MinSide + r.intn(span),
				Duration: 0.5*cfg.MeanDuration + r.exp(cfg.MeanDuration*0.5),
			})
		}
	}
	return apps
}
