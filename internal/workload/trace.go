package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Trace file format: a single JSON document with a magic marker and a format
// version, carrying the generator configuration (when the stream came from
// Stream) and the fully-materialised task list. Replaying the task list —
// rather than re-generating from the config — is what makes a recorded
// experiment reproducible across generator changes: the tasks on disk are
// the experiment.
const (
	TraceMagic   = "rlm-workload-trace"
	TraceVersion = 1
)

// Typed trace errors; callers branch with errors.Is.
var (
	// ErrTraceMagic: the file is not a workload trace at all.
	ErrTraceMagic = errors.New("workload: not a trace file")
	// ErrTraceVersion: the trace is from a newer format revision.
	ErrTraceVersion = errors.New("workload: unsupported trace version")
	// ErrTraceMalformed: structurally a trace, semantically broken.
	ErrTraceMalformed = errors.New("workload: malformed trace")
)

// Trace is a versioned, self-describing capture of one task stream.
type Trace struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Label names the experiment that recorded the trace.
	Label string `json:"label,omitempty"`
	// Config is the generator configuration the tasks were drawn from; nil
	// for merged or hand-written traces. It is documentation — replay uses
	// Tasks, never re-generates.
	Config *Config `json:"config,omitempty"`
	Tasks  []Task  `json:"tasks"`
}

// NewTrace wraps a task stream in the current format envelope.
func NewTrace(label string, cfg *Config, tasks []Task) *Trace {
	return &Trace{Magic: TraceMagic, Version: TraceVersion, Label: label, Config: cfg, Tasks: tasks}
}

// validate enforces the semantic invariants replay depends on.
func (tr *Trace) validate() error {
	if tr.Magic != TraceMagic {
		return fmt.Errorf("%w: magic %q", ErrTraceMagic, tr.Magic)
	}
	if tr.Version < 1 || tr.Version > TraceVersion {
		return fmt.Errorf("%w: version %d (this build reads <= %d)", ErrTraceVersion, tr.Version, TraceVersion)
	}
	prev := 0.0
	for i, t := range tr.Tasks {
		switch {
		case t.H <= 0 || t.W <= 0:
			return fmt.Errorf("%w: task %d has region %dx%d", ErrTraceMalformed, i, t.H, t.W)
		case t.Service <= 0:
			return fmt.Errorf("%w: task %d has service %g", ErrTraceMalformed, i, t.Service)
		case t.Arrival < prev:
			return fmt.Errorf("%w: task %d arrives at %g before task %d at %g",
				ErrTraceMalformed, i, t.Arrival, i-1, prev)
		}
		prev = t.Arrival
	}
	return nil
}

// WriteTrace serialises the trace.
func WriteTrace(w io.Writer, tr *Trace) error {
	if err := tr.validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadTrace deserialises and validates a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceMagic, err)
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// SaveTrace writes the trace to path (truncating).
func SaveTrace(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads and validates the trace at path.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// MergeTraces folds several traces into one stream for batch ingest: tasks
// are merged in arrival order (stable across inputs) and re-numbered. The
// result carries no Config — it no longer corresponds to one generator draw.
func MergeTraces(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("%w: nothing to merge", ErrTraceMalformed)
	}
	var tasks []Task
	for _, tr := range traces {
		if err := tr.validate(); err != nil {
			return nil, err
		}
		tasks = append(tasks, tr.Tasks...)
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return NewTrace("merged", nil, tasks), nil
}
