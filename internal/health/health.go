// Package health tracks the per-column health lifecycle of the
// configuration fabric: healthy → suspect → quarantined → probation →
// healthy. The tracker is pure book-keeping — it decides *when* a column
// changes state from the evidence it is fed (foreground faults, scrub
// comparisons, scrub repairs, quarantine probes) and reports each decision
// as a Change; the caller owns the side effects (masking frames, updating
// the area map, journaling, events).
//
// Evidence model:
//
//   - NoteFault: a foreground delivery fault touched the column. Bumps an
//     EWMA error rate; crossing Policy.SuspectAbove marks a healthy column
//     suspect.
//   - NoteClean: a scrub readback of a frame in the column matched the
//     shadow. Decays the EWMA; on a probation column it also counts toward
//     Policy.ProbationChecks clean checks needed to return to healthy.
//   - NoteRepair: the scrubber had to repair a frame. Policy.CondemnRepairs
//     repairs of the *same frame* condemn its column preemptively; any
//     repair inside a probation column sends it straight back to
//     quarantined.
//   - NoteProbe: a test-pattern probe of a quarantined column succeeded or
//     failed. Policy.ProbesToRelease consecutive clean probes move the
//     column to probation; a failed probe resets the streak.
//   - Condemn: unconditional transition to quarantined (retry exhaustion,
//     recovery replay). Works under any policy, including the zero policy.
//
// The zero Policy reproduces the legacy behaviour: no suspect marking, no
// preemptive condemnation, no probing, no release — quarantine is
// permanent.
package health

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// State is one stage of the column health lifecycle.
type State uint8

const (
	// Healthy columns carry designs and take new placements.
	Healthy State = iota
	// Suspect columns have an elevated error rate but are still in
	// service; the state is advisory (events/reports), not masking.
	Suspect
	// Quarantined columns are masked out of placement and delivery.
	Quarantined
	// Probation columns passed their probes and are back in service,
	// but one scrub repair sends them straight back to quarantine.
	Probation
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Policy holds the thresholds driving the lifecycle. The zero value
// disables every automatic transition (legacy permanent quarantine).
type Policy struct {
	// Alpha is the EWMA smoothing factor for the per-column error rate:
	// rate = Alpha*event + (1-Alpha)*rate. 0 disables rate tracking.
	Alpha float64
	// SuspectAbove marks a healthy column suspect when its error rate
	// reaches this level. 0 disables suspect marking.
	SuspectAbove float64
	// CondemnRepairs preemptively condemns a column after this many
	// scrub repairs of the same frame. 0 disables preemptive
	// condemnation.
	CondemnRepairs int
	// ProbesToRelease moves a quarantined column to probation after
	// this many consecutive clean probes. 0 disables probing/release.
	ProbesToRelease int
	// ProbationChecks returns a probation column to healthy after this
	// many clean scrub checks with no repair. 0 keeps probation
	// indefinite (still in service).
	ProbationChecks int
	// DegradedBelow is the healthy-capacity watermark for admission
	// control: when healthy CLBs fall below DegradedBelow × total CLBs,
	// Load/Plan fail fast with ErrDegraded. 0 disables the gate.
	DegradedBelow float64
}

// DefaultPolicy returns thresholds tuned for the simulated transport:
// responsive enough for tests, conservative enough that a single
// transient never condemns a column.
func DefaultPolicy() Policy {
	return Policy{
		Alpha:           0.5,
		SuspectAbove:    0.25,
		CondemnRepairs:  3,
		ProbesToRelease: 2,
		ProbationChecks: 8,
		DegradedBelow:   0.5,
	}
}

// Column is the exported health ledger entry for one configuration
// column, keyed by its frame-address major.
type Column struct {
	Major       int
	State       State
	Rate        float64 // EWMA error rate
	CleanProbes int     // consecutive clean probes while quarantined
	CleanChecks int     // clean scrub checks while on probation
	Probes      int     // lifetime probe count
	ProbeFails  int     // lifetime failed probes
	Repairs     int     // lifetime scrub repairs
}

// Change reports one state transition decided by the tracker.
type Change struct {
	Major int
	From  State
	To    State
}

// Tracker owns the health ledger. It is not safe for concurrent use; the
// caller serializes access (the facade holds its own lock).
type Tracker struct {
	pol  Policy
	cols map[int]*Column
	// repairs counts scrub repairs per frame for preemptive
	// condemnation. Transient: not journaled, so a crash resets the
	// streak — conservative in the safe direction (a column needs fresh
	// evidence after recovery).
	repairs map[fabric.FrameAddr]int
}

// NewTracker builds a tracker with the given policy.
func NewTracker(pol Policy) *Tracker {
	return &Tracker{
		pol:     pol,
		cols:    make(map[int]*Column),
		repairs: make(map[fabric.FrameAddr]int),
	}
}

// Policy returns the tracker's policy.
func (t *Tracker) Policy() Policy { return t.pol }

func (t *Tracker) col(major int) *Column {
	c := t.cols[major]
	if c == nil {
		c = &Column{Major: major}
		t.cols[major] = c
	}
	return c
}

func change(c *Column, to State) *Change {
	ch := &Change{Major: c.Major, From: c.State, To: to}
	c.State = to
	return ch
}

// NoteFault records a foreground delivery fault on the column and returns
// a non-nil Change if the column transitions (healthy → suspect).
func (t *Tracker) NoteFault(major int) *Change {
	if t.pol.Alpha <= 0 {
		return nil
	}
	c := t.col(major)
	c.Rate = t.pol.Alpha + (1-t.pol.Alpha)*c.Rate
	if c.State == Healthy && t.pol.SuspectAbove > 0 && c.Rate >= t.pol.SuspectAbove {
		return change(c, Suspect)
	}
	return nil
}

// NoteClean records a clean scrub readback of one frame in the column.
// On a probation column it counts toward the clean checks needed to
// return to healthy (the returned Change is probation → healthy).
func (t *Tracker) NoteClean(major int) *Change {
	c := t.cols[major]
	if c == nil {
		return nil // never faulted: nothing to decay or advance
	}
	if t.pol.Alpha > 0 && c.Rate > 0 {
		c.Rate = (1 - t.pol.Alpha) * c.Rate
		if c.Rate < 1e-9 {
			c.Rate = 0
		}
		if c.State == Suspect && t.pol.SuspectAbove > 0 && c.Rate < t.pol.SuspectAbove {
			return change(c, Healthy)
		}
	}
	if c.State == Probation && t.pol.ProbationChecks > 0 {
		c.CleanChecks++
		if c.CleanChecks >= t.pol.ProbationChecks {
			c.CleanChecks = 0
			return change(c, Healthy)
		}
	}
	return nil
}

// NoteRepair records a scrub repair of one frame. Returns a non-nil
// Change when the repair condemns the frame's column: either the
// per-frame repair streak reached Policy.CondemnRepairs, or the column
// was on probation (one strike and it is back in quarantine).
func (t *Tracker) NoteRepair(addr fabric.FrameAddr) *Change {
	c := t.col(addr.Major)
	c.Repairs++
	if c.State == Probation {
		c.CleanChecks = 0
		c.CleanProbes = 0
		return change(c, Quarantined)
	}
	if c.State == Quarantined {
		return nil
	}
	if t.pol.CondemnRepairs <= 0 {
		return nil
	}
	t.repairs[addr]++
	if t.repairs[addr] >= t.pol.CondemnRepairs {
		t.forgetColumn(addr.Major)
		c.CleanProbes = 0
		return change(c, Quarantined)
	}
	return nil
}

// Condemn forces the column to quarantined regardless of policy (retry
// exhaustion, recovery replay). Returns nil if already quarantined.
func (t *Tracker) Condemn(major int) *Change {
	c := t.col(major)
	if c.State == Quarantined {
		return nil
	}
	t.forgetColumn(major)
	c.CleanProbes = 0
	c.CleanChecks = 0
	return change(c, Quarantined)
}

// forgetColumn drops the per-frame repair streaks of a column once it is
// condemned (the evidence served its purpose).
func (t *Tracker) forgetColumn(major int) {
	for addr := range t.repairs {
		if addr.Major == major {
			delete(t.repairs, addr)
		}
	}
}

// NoteProbe records the outcome of a test-pattern probe of a quarantined
// column. Policy.ProbesToRelease consecutive clean probes move it to
// probation (the returned Change); a failed probe resets the streak.
func (t *Tracker) NoteProbe(major int, clean bool) *Change {
	c := t.col(major)
	c.Probes++
	if !clean {
		c.ProbeFails++
		c.CleanProbes = 0
		return nil
	}
	if c.State != Quarantined || t.pol.ProbesToRelease <= 0 {
		return nil
	}
	c.CleanProbes++
	if c.CleanProbes >= t.pol.ProbesToRelease {
		c.CleanProbes = 0
		c.CleanChecks = 0
		c.Rate = 0
		return change(c, Probation)
	}
	return nil
}

// State returns the column's current state (Healthy if never seen).
func (t *Tracker) State(major int) State {
	if c := t.cols[major]; c != nil {
		return c.State
	}
	return Healthy
}

// QuarantinedMajors returns the majors currently quarantined, sorted.
func (t *Tracker) QuarantinedMajors() []int {
	var out []int
	for major, c := range t.cols {
		if c.State == Quarantined {
			out = append(out, major)
		}
	}
	sort.Ints(out)
	return out
}

// MajorsIn returns the majors currently in the given state, sorted.
func (t *Tracker) MajorsIn(st State) []int {
	var out []int
	for major, c := range t.cols {
		if c.State == st {
			out = append(out, major)
		}
	}
	sort.Ints(out)
	return out
}

// Columns exports the ledger sorted by major (journal serialization,
// reports). Entries are copies.
func (t *Tracker) Columns() []Column {
	out := make([]Column, 0, len(t.cols))
	for _, c := range t.cols {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Major < out[j].Major })
	return out
}

// Restore replaces the ledger with the given entries (journal recovery).
// Per-frame repair streaks are transient and start empty.
func (t *Tracker) Restore(cols []Column) {
	t.cols = make(map[int]*Column, len(cols))
	t.repairs = make(map[fabric.FrameAddr]int)
	for _, c := range cols {
		cc := c
		t.cols[c.Major] = &cc
	}
}
