package health

import (
	"testing"

	"repro/internal/fabric"
)

func fa(major, minor int) fabric.FrameAddr {
	return fabric.FrameAddr{Major: major, Minor: minor}
}

func TestZeroPolicyIsLegacyPermanentQuarantine(t *testing.T) {
	tr := NewTracker(Policy{})

	for i := 0; i < 100; i++ {
		if ch := tr.NoteFault(3); ch != nil {
			t.Fatalf("zero policy: NoteFault produced change %+v", ch)
		}
		if ch := tr.NoteRepair(fa(3, 0)); ch != nil {
			t.Fatalf("zero policy: NoteRepair produced change %+v", ch)
		}
	}
	if got := tr.State(3); got != Healthy {
		t.Fatalf("zero policy: state = %v, want healthy", got)
	}

	// Condemn still works (retry exhaustion path).
	ch := tr.Condemn(3)
	if ch == nil || ch.To != Quarantined {
		t.Fatalf("Condemn change = %+v, want → quarantined", ch)
	}
	if tr.Condemn(3) != nil {
		t.Fatal("second Condemn should be a no-op")
	}

	// And nothing releases it.
	for i := 0; i < 100; i++ {
		if ch := tr.NoteProbe(3, true); ch != nil {
			t.Fatalf("zero policy: NoteProbe produced change %+v", ch)
		}
		if ch := tr.NoteClean(3); ch != nil {
			t.Fatalf("zero policy: NoteClean produced change %+v", ch)
		}
	}
	if got := tr.State(3); got != Quarantined {
		t.Fatalf("zero policy: state = %v, want quarantined forever", got)
	}
}

func TestFaultRateMarksSuspectAndCleanDecaysBack(t *testing.T) {
	tr := NewTracker(Policy{Alpha: 0.5, SuspectAbove: 0.6})

	if ch := tr.NoteFault(2); ch != nil { // rate 0.5 < 0.6
		t.Fatalf("first fault: change %+v, want none", ch)
	}
	ch := tr.NoteFault(2) // rate 0.75 ≥ 0.6
	if ch == nil || ch.From != Healthy || ch.To != Suspect {
		t.Fatalf("second fault: change %+v, want healthy → suspect", ch)
	}
	if tr.NoteFault(2) != nil {
		t.Fatal("already suspect: further faults should not re-transition")
	}

	// Clean observations decay the rate back below the threshold.
	var back *Change
	for i := 0; i < 10 && back == nil; i++ {
		back = tr.NoteClean(2)
	}
	if back == nil || back.From != Suspect || back.To != Healthy {
		t.Fatalf("decay: change %+v, want suspect → healthy", back)
	}
}

func TestRepeatedRepairsOfSameFrameCondemn(t *testing.T) {
	tr := NewTracker(Policy{CondemnRepairs: 3})

	// Repairs of different frames never condemn.
	for minor := 0; minor < 5; minor++ {
		if ch := tr.NoteRepair(fa(1, minor)); ch != nil {
			t.Fatalf("distinct frames: change %+v", ch)
		}
	}
	// Same frame, three times: condemned.
	tr.NoteRepair(fa(2, 7))
	tr.NoteRepair(fa(2, 7))
	ch := tr.NoteRepair(fa(2, 7))
	if ch == nil || ch.To != Quarantined {
		t.Fatalf("third repair: change %+v, want → quarantined", ch)
	}
	// Further repairs of a quarantined column are silent.
	if tr.NoteRepair(fa(2, 7)) != nil {
		t.Fatal("repair of quarantined column should not re-transition")
	}
	if got := tr.Columns()[1].Repairs; got != 4 {
		t.Fatalf("repairs counter = %d, want 4", got)
	}
}

func TestProbeReleaseAndProbationLifecycle(t *testing.T) {
	pol := Policy{CondemnRepairs: 2, ProbesToRelease: 2, ProbationChecks: 3}
	tr := NewTracker(pol)

	tr.Condemn(4)

	// One clean probe is not enough; a failed probe resets the streak.
	if ch := tr.NoteProbe(4, true); ch != nil {
		t.Fatalf("first probe: change %+v", ch)
	}
	if ch := tr.NoteProbe(4, false); ch != nil {
		t.Fatalf("failed probe: change %+v", ch)
	}
	tr.NoteProbe(4, true)
	ch := tr.NoteProbe(4, true)
	if ch == nil || ch.From != Quarantined || ch.To != Probation {
		t.Fatalf("second consecutive clean probe: change %+v, want quarantined → probation", ch)
	}

	// Probation: three clean checks return it to healthy.
	tr.NoteClean(4)
	tr.NoteClean(4)
	ch = tr.NoteClean(4)
	if ch == nil || ch.From != Probation || ch.To != Healthy {
		t.Fatalf("probation checks: change %+v, want probation → healthy", ch)
	}

	c := tr.Columns()[0]
	if c.Probes != 4 || c.ProbeFails != 1 {
		t.Fatalf("probe history = %d/%d fails, want 4/1", c.Probes, c.ProbeFails)
	}
}

func TestRepairDuringProbationRecondemns(t *testing.T) {
	pol := Policy{CondemnRepairs: 5, ProbesToRelease: 1, ProbationChecks: 3}
	tr := NewTracker(pol)
	tr.Condemn(6)
	if ch := tr.NoteProbe(6, true); ch == nil || ch.To != Probation {
		t.Fatalf("probe: change %+v, want → probation", ch)
	}
	tr.NoteClean(6) // one clean check banked
	ch := tr.NoteRepair(fa(6, 2))
	if ch == nil || ch.From != Probation || ch.To != Quarantined {
		t.Fatalf("repair on probation: change %+v, want probation → quarantined", ch)
	}
	// The clean-check streak must be gone: releasing again takes a full
	// probe cycle plus full probation.
	if ch := tr.NoteProbe(6, true); ch == nil || ch.To != Probation {
		t.Fatal("re-release should need a fresh probe pass")
	}
	tr.NoteClean(6)
	tr.NoteClean(6)
	if ch := tr.NoteClean(6); ch == nil || ch.To != Healthy {
		t.Fatal("probation restart should need the full check count")
	}
}

func TestCondemnResetsRepairStreak(t *testing.T) {
	tr := NewTracker(Policy{CondemnRepairs: 2, ProbesToRelease: 1})
	tr.NoteRepair(fa(5, 1)) // streak 1
	tr.Condemn(5)
	tr.NoteProbe(5, true) // released to probation
	if tr.State(5) != Probation {
		t.Fatalf("state = %v, want probation", tr.State(5))
	}
	// The pre-condemn streak must not count: after release the same
	// frame needs CondemnRepairs fresh repairs... but probation is
	// one-strike, so a single repair recondemns anyway. Check instead
	// via a fresh healthy column path after full recovery.
	tr2 := NewTracker(Policy{CondemnRepairs: 2})
	tr2.NoteRepair(fa(5, 1))
	tr2.Condemn(5)
	tr2.Restore(nil) // ledger wiped, streaks wiped
	if ch := tr2.NoteRepair(fa(5, 1)); ch != nil {
		t.Fatalf("restored tracker: first repair condemned: %+v", ch)
	}
	if ch := tr2.NoteRepair(fa(5, 1)); ch == nil {
		t.Fatal("restored tracker: second repair should condemn")
	}
}

func TestColumnsExportAndRestore(t *testing.T) {
	tr := NewTracker(DefaultPolicy())
	tr.Condemn(9)
	tr.Condemn(2)
	tr.NoteFault(5)

	cols := tr.Columns()
	if len(cols) != 3 || cols[0].Major != 2 || cols[1].Major != 5 || cols[2].Major != 9 {
		t.Fatalf("Columns() = %+v, want majors 2,5,9 sorted", cols)
	}
	if got := tr.QuarantinedMajors(); len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("QuarantinedMajors() = %v, want [2 9]", got)
	}

	tr2 := NewTracker(DefaultPolicy())
	tr2.Restore(cols)
	if tr2.State(9) != Quarantined || tr2.State(2) != Quarantined {
		t.Fatal("restore lost quarantined state")
	}
	got := tr2.Columns()
	if len(got) != 3 {
		t.Fatalf("restored ledger has %d entries, want 3", len(got))
	}
	for i := range got {
		if got[i] != cols[i] {
			t.Fatalf("restored entry %d = %+v, want %+v", i, got[i], cols[i])
		}
	}
	// Mutating the restored tracker must not alias the export.
	tr2.NoteProbe(9, true)
	if cols[2].Probes != 0 {
		t.Fatal("Restore aliased the caller's slice")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Healthy: "healthy", Suspect: "suspect", Quarantined: "quarantined", Probation: "probation"}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("String(%d) = %q, want %q", st, st.String(), s)
		}
	}
	if State(42).String() != "state(42)" {
		t.Fatalf("unknown state string = %q", State(42).String())
	}
}
