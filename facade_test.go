package rlm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// mkCounter builds a tiny free-running sequential design.
func mkCounter(name string) *netlist.Netlist {
	nl := netlist.New(name)
	a := nl.Input("a")
	x := nl.LUT("x", fabric.LUTXor2, a, a)
	ff := nl.FF("r", x, netlist.None, false)
	nl.Output("q", ff)
	return nl
}

func TestSentinelErrors(t *testing.T) {
	s := newSys(t)
	nl, _ := itc99.Get("b02")
	if _, err := s.Load(nl, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}

	t.Run("duplicate", func(t *testing.T) {
		nl2, _ := itc99.Get("b02")
		_, err := s.Load(nl2, fabric.Rect{Row: 8, Col: 8, H: 4, W: 4})
		if !errors.Is(err, ErrDuplicateDesign) {
			t.Errorf("want ErrDuplicateDesign, got %v", err)
		}
	})
	t.Run("unknown-unload", func(t *testing.T) {
		if err := s.Unload("ghost"); !errors.Is(err, ErrUnknownDesign) {
			t.Errorf("want ErrUnknownDesign, got %v", err)
		}
	})
	t.Run("unknown-move", func(t *testing.T) {
		err := s.Move("ghost", fabric.Rect{Row: 8, Col: 8, H: 4, W: 4})
		if !errors.Is(err, ErrUnknownDesign) {
			t.Errorf("want ErrUnknownDesign, got %v", err)
		}
	})
	t.Run("region-mismatch", func(t *testing.T) {
		err := s.Move("b02", fabric.Rect{Row: 8, Col: 8, H: 3, W: 4})
		if !errors.Is(err, ErrRegionMismatch) {
			t.Errorf("want ErrRegionMismatch, got %v", err)
		}
	})
	t.Run("region-busy-load", func(t *testing.T) {
		_, err := s.Load(mkCounter("clash"), fabric.Rect{Row: 2, Col: 2, H: 4, W: 4})
		if !errors.Is(err, ErrRegionBusy) {
			t.Errorf("want ErrRegionBusy, got %v", err)
		}
	})
	t.Run("region-busy-move", func(t *testing.T) {
		if _, err := s.Load(mkCounter("bump"), fabric.Rect{Row: 10, Col: 10, H: 1, W: 1}); err != nil {
			t.Fatal(err)
		}
		err := s.Move("bump", fabric.Rect{Row: 1, Col: 1, H: 1, W: 1})
		if !errors.Is(err, ErrRegionBusy) {
			t.Errorf("want ErrRegionBusy, got %v", err)
		}
	})
	t.Run("no-space", func(t *testing.T) {
		huge := itc99.Generate(itc99.GenConfig{
			Name: "huge", Inputs: 4, Outputs: 4, FFs: 400, LUTs: 1200,
			Seed: 7, Style: itc99.FreeRunning,
		})
		_, err := s.Load(huge, fabric.Rect{})
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("want ErrNoSpace, got %v", err)
		}
	})
	t.Run("no-space-defrag", func(t *testing.T) {
		_, err := s.Defragment(DefragPolicy{NeedH: 200, NeedW: 200})
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("want ErrNoSpace, got %v", err)
		}
	})
	t.Run("plan-invalid", func(t *testing.T) {
		err := s.Plan().Move("ghost", fabric.Rect{Row: 8, Col: 8, H: 4, W: 4}).Commit()
		if !errors.Is(err, ErrPlanInvalid) || !errors.Is(err, ErrUnknownDesign) {
			t.Errorf("want ErrPlanInvalid wrapping ErrUnknownDesign, got %v", err)
		}
	})
}

func TestMoveStagedRejectsOccupiedCorridor(t *testing.T) {
	s := newSys(t)
	d, err := s.Load(mkCounter("walker"), fabric.Rect{Row: 0, Col: 0, H: 1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A block sits right on the single-step corridor.
	if _, err := s.Load(mkCounter("block"), fabric.Rect{Row: 1, Col: 1, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	frames0 := s.Stats().FramesWritten
	err = s.MoveStaged("walker", fabric.Rect{Row: 4, Col: 4, H: 1, W: 1}, 1)
	if !errors.Is(err, ErrRegionBusy) {
		t.Fatalf("want ErrRegionBusy, got %v", err)
	}
	// Rejected before any frame streamed; nothing moved.
	if got := s.Stats().FramesWritten; got != frames0 {
		t.Errorf("frames streamed for a rejected staged move: %d -> %d", frames0, got)
	}
	if d.Region != (fabric.Rect{Row: 0, Col: 0, H: 1, W: 1}) {
		t.Errorf("walker moved: %v", d.Region)
	}
	// A detour with larger hops (skipping the blocked corridor) works.
	if err := s.MoveStaged("walker", fabric.Rect{Row: 4, Col: 4, H: 1, W: 1}, 4); err != nil {
		t.Fatalf("detour staged move: %v", err)
	}
	if d.Region != (fabric.Rect{Row: 4, Col: 4, H: 1, W: 1}) {
		t.Errorf("walker region = %v", d.Region)
	}
}

// TestConcurrentReadsDuringMove runs observers against the facade while a
// relocation streams; run with -race.
func TestConcurrentReadsDuringMove(t *testing.T) {
	s := newSys(t)
	nl := mkCounter("mover")
	d, err := s.Load(nl, fabric.Rect{Row: 2, Col: 2, H: 1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(17)
	s.Engine().Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if err := ls.Step([]bool{rng>>40&1 == 1}); err != nil {
				return err
			}
		}
		return nil
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = s.Fragmentation()
				_ = s.Stats()
				_ = s.Designs()
				_, _ = s.Region("mover")
				_ = s.Utilisation()
			}
		}()
	}
	err = s.Move("mover", fabric.Rect{Row: 9, Col: 9, H: 1, W: 1})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if got, _ := s.Region("mover"); got != (fabric.Rect{Row: 9, Col: 9, H: 1, W: 1}) {
		t.Errorf("region = %v", got)
	}
}

// TestLoadRollbackOnFailure is the regression test for the Load resource
// leak: a placement that fails midway (here: pad exhaustion after some of
// the design's input pads were already configured) must leave no pads
// reserved, no cells configured, no area booked — and a subsequent load
// must succeed.
func TestLoadRollbackOnFailure(t *testing.T) {
	s, err := New(WithDevice(fabric.TestDevice), WithPort(SelectMAP))
	if err != nil {
		t.Fatal(err)
	}
	// TestDevice is 8x12: 16 pads per west/east edge. Fill most of the
	// west edge so the next design exhausts it partway through binding.
	wide := itc99.Generate(itc99.GenConfig{
		Name: "wide", Inputs: 12, Outputs: 2, FFs: 2, LUTs: 14,
		Seed: 3, Style: itc99.FreeRunning,
	})
	if _, err := s.Load(wide, fabric.Rect{Row: 0, Col: 0, H: 4, W: 8}); err != nil {
		t.Fatal(err)
	}
	freeCLBs := s.Area().FreeCLBs()
	padCount := func() int {
		n := 0
		for pos := 0; pos < s.Device().Rows; pos++ {
			for k := 0; k < fabric.PadsPerEdgeTile; k++ {
				p := fabric.PadRef{Side: fabric.West, Pos: pos, K: k}
				if s.Device().ReadPad(p).Input {
					n++
				}
			}
		}
		return n
	}
	padsBefore := padCount()
	if padsBefore != 12 {
		t.Fatalf("setup: %d west input pads, want 12", padsBefore)
	}

	// 6 inputs > 4 remaining west pads: bindPads fails after configuring
	// some of them.
	greedy := itc99.Generate(itc99.GenConfig{
		Name: "greedy", Inputs: 6, Outputs: 1, FFs: 1, LUTs: 7,
		Seed: 4, Style: itc99.FreeRunning,
	})
	if _, err := s.Load(greedy, fabric.Rect{Row: 5, Col: 0, H: 3, W: 6}); err == nil {
		t.Fatal("greedy load unexpectedly succeeded")
	}

	if got := padCount(); got != padsBefore {
		t.Errorf("leaked pads: %d configured west inputs, want %d", got, padsBefore)
	}
	if got := s.Area().FreeCLBs(); got != freeCLBs {
		t.Errorf("leaked area: %d free CLBs, want %d", got, freeCLBs)
	}
	if got := len(s.Designs()); got != 1 {
		t.Errorf("designs = %v", s.Designs())
	}
	// The failed region must be completely clean on the fabric.
	for _, c := range (fabric.Rect{Row: 5, Col: 0, H: 3, W: 6}).Coords() {
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			if s.Device().ReadCell(fabric.CellRef{Coord: c, Cell: cell}).InUse() {
				t.Fatalf("cell %v/%d configured after failed load", c, cell)
			}
		}
	}
	// A design that fits the remaining pads loads fine afterwards.
	ok := itc99.Generate(itc99.GenConfig{
		Name: "modest", Inputs: 3, Outputs: 1, FFs: 1, LUTs: 4,
		Seed: 5, Style: itc99.FreeRunning,
	})
	d, err := s.Load(ok, fabric.Rect{Row: 5, Col: 0, H: 3, W: 6})
	if err != nil {
		t.Fatalf("post-rollback load: %v", err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := ls.Step([]bool{i%2 == 0, i%3 == 0, true}); err != nil {
			t.Fatalf("post-rollback design broken at cycle %d: %v", i, err)
		}
	}
}

func TestPlanCommit(t *testing.T) {
	s := newSys(t)
	nlA := itc99.Generate(itc99.GenConfig{
		Name: "alpha", Inputs: 3, Outputs: 2, FFs: 8, LUTs: 16,
		Seed: 99, Style: itc99.FreeRunning,
	})
	nlB, _ := itc99.Get("b02")
	err := s.Plan().
		Load(nlA, fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}).
		Load(nlB, fabric.Rect{Row: 0, Col: 8, H: 4, W: 4}).
		Move("alpha", fabric.Rect{Row: 9, Col: 9, H: 4, W: 4}).
		Unload("b02").
		Commit()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Designs(); len(got) != 1 || got[0] != "alpha" {
		t.Errorf("designs = %v", got)
	}
	if r, _ := s.Region("alpha"); r != (fabric.Rect{Row: 9, Col: 9, H: 4, W: 4}) {
		t.Errorf("alpha region = %v", r)
	}
}

func TestPlanValidateLeavesSystemUntouched(t *testing.T) {
	s := newSys(t)
	nlA, _ := itc99.Get("b01")
	nlB, _ := itc99.Get("b02")
	frames0 := s.Stats().FramesWritten
	err := s.Plan().
		Load(nlA, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}).
		Load(nlB, fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}). // overlaps the first
		Commit()
	if !errors.Is(err, ErrPlanInvalid) || !errors.Is(err, ErrRegionBusy) {
		t.Fatalf("want ErrPlanInvalid wrapping ErrRegionBusy, got %v", err)
	}
	if got := s.Stats().FramesWritten; got != frames0 {
		t.Errorf("invalid plan streamed %d frames", got-frames0)
	}
	if len(s.Designs()) != 0 {
		t.Errorf("designs = %v", s.Designs())
	}
}

// TestPlanRollbackMidPlan forces a physical failure that the dry-run
// cannot see (a squatter cell configured outside the area book-keeping)
// and checks the whole transaction rolls back.
func TestPlanRollbackMidPlan(t *testing.T) {
	s := newSys(t)
	nlA, _ := itc99.Get("b01")
	if _, err := s.Load(nlA, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	// Squat on the move target behind the book-keeping's back.
	squat := fabric.CellRef{Coord: fabric.Coord{Row: 9, Col: 9}, Cell: 0}
	s.Device().WriteCell(squat, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})

	nlB, _ := itc99.Get("b02")
	err := s.Plan().
		Load(nlB, fabric.Rect{Row: 0, Col: 6, H: 4, W: 4}).
		Move("b01", fabric.Rect{Row: 8, Col: 8, H: 4, W: 4}). // lands on the squatter
		Commit()
	if err == nil {
		t.Fatal("plan unexpectedly committed")
	}
	// All-or-nothing: the already-executed load is rolled back too.
	if got := s.Designs(); len(got) != 1 || got[0] != "b01" {
		t.Errorf("designs after rollback = %v", got)
	}
	if r, _ := s.Region("b01"); r != (fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}) {
		t.Errorf("b01 region after rollback = %v", r)
	}
	if !s.Device().ReadCell(squat).InUse() {
		t.Error("squatter cell lost in rollback")
	}
	// b01 still works: load-free smoke run.
	d, _ := s.Design("b01")
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		in := make([]bool, len(nlA.Inputs()))
		if err := ls.Step(in); err != nil {
			t.Fatalf("b01 broken after rollback: %v", err)
		}
	}
}

func TestEventStream(t *testing.T) {
	s := newSys(t)
	ch, cancel := s.Subscribe(128)
	nl := mkCounter("evt")
	if _, err := s.Load(nl, fabric.Rect{Row: 2, Col: 2, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("evt", fabric.Rect{Row: 5, Col: 5, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Unload("evt"); err != nil {
		t.Fatal(err)
	}
	cancel()
	var kinds []EventKind
	for e := range ch {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{DesignLoaded, CLBRelocated, DesignMoved, DesignUnloaded}
	got := fmt.Sprint(kinds)
	if got != fmt.Sprint(want) {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}
}
