package rlm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/journal"
)

// colHealth returns the health ledger entry for one column (zero value —
// implicitly healthy — when the column never produced evidence).
func colHealth(s *System, major int) ColumnHealth {
	for _, c := range s.Health() {
		if c.Major == major {
			return c
		}
	}
	return ColumnHealth{Major: major}
}

// ownedMinor returns the first frame of the column the shadow owns (the
// scrubber and the probes only act on shadow-owned frames, so health tests
// must target one).
func ownedMinor(t *testing.T, s *System, major int) fabric.FrameAddr {
	t.Helper()
	col, ok := s.Device().ColumnByMajor(major)
	if !ok {
		t.Fatalf("no column at major %d", major)
	}
	for minor := 0; minor < col.Frames; minor++ {
		fa := fabric.FrameAddr{Major: major, Minor: minor}
		if _, ok := s.Engine().Tool.Shadow().Frame(fa); ok {
			return fa
		}
	}
	t.Fatalf("no shadow-owned frame in column F%d (load a design over it first)", major)
	return fabric.FrameAddr{}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestScrubPreemptiveQuarantineAndProbeRelease walks one column through the
// complete health lifecycle deterministically, with manual scrub passes:
// repeated scrub repairs of the same frame condemn the column before any
// foreground operation ever faults on it; probes release it into probation
// once the memory tests clean; one repair during probation sends it straight
// back; and sustained clean scrubs finally return it to full health.
func TestScrubPreemptiveQuarantineAndProbeRelease(t *testing.T) {
	pol := HealthPolicy{
		Alpha:           0.5,
		SuspectAbove:    0.25,
		CondemnRepairs:  2,
		ProbesToRelease: 2,
		ProbationChecks: 3,
	}
	sys, flaky := faultSystem(t, 41, WithHealthPolicy(pol))
	events, cancel := sys.Subscribe(256)
	defer cancel()

	// Own the far-east column's frames in the shadow, then free the space:
	// the scrubber only checks (and the probes only exercise) frames the
	// host has golden content for.
	if _, err := sys.Load(mkCounter("occ"), fabric.Rect{Row: 6, Col: 10, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unload("occ"); err != nil {
		t.Fatal(err)
	}
	major := sys.Device().MajorOfArrayCol(11)
	addr := ownedMinor(t, sys, major)
	colRect := fabric.Rect{Row: 0, Col: 11, H: sys.Device().Rows, W: 1}

	// Two scrub repairs of the same frame condemn the column preemptively.
	flaky.FlipBit(addr, 1, 3)
	if _, err := sys.Scrub(0); err != nil {
		t.Fatal(err)
	}
	if st := colHealth(sys, major).State; st != ColumnHealthy {
		t.Fatalf("one repair already changed state to %v", st)
	}
	flaky.FlipBit(addr, 1, 3)
	if _, err := sys.Scrub(0); err != nil {
		t.Fatal(err)
	}
	if st := colHealth(sys, major).State; st != ColumnQuarantined {
		t.Fatalf("state after %d repairs of %v = %v, want quarantined", pol.CondemnRepairs, addr, st)
	}
	if !sys.Area().QuarantineOverlaps(colRect) {
		t.Fatal("condemned column not masked out of the logic space")
	}
	if _, err := sys.Load(mkCounter("x"), fabric.Rect{Row: 0, Col: 10, H: 2, W: 2}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("load over the condemned column: %v, want ErrQuarantined", err)
	}
	st := sys.Stats()
	if st.ScrubRepairs != 2 || st.FramesQuarantined == 0 {
		t.Fatalf("preemptive-quarantine stats: %+v", st)
	}
	if st.Probes != 1 || st.ProbeFailures != 0 {
		// The condemning pass already ran the first (clean) probe.
		t.Fatalf("probe stats after condemnation: %+v", st)
	}

	// A probe that trips on the bad memory fails the column and resets the
	// release streak.
	flaky.FailFrames(addr)
	if _, err := sys.Scrub(0); err != nil {
		t.Fatal(err)
	}
	st = sys.Stats()
	if st.ProbeFailures != 1 {
		t.Fatalf("probe over failing frame: %+v", st)
	}
	if h := colHealth(sys, major); h.State != ColumnQuarantined || h.CleanProbes != 0 {
		t.Fatalf("failed probe did not reset the streak: %+v", h)
	}

	// Healed memory tests clean: the release streak rebuilds and the column
	// enters probation — back in service.
	flaky.HealFrames(addr)
	for i := 0; i < 3 && colHealth(sys, major).State != ColumnProbation; i++ {
		if _, err := sys.Scrub(0); err != nil {
			t.Fatal(err)
		}
	}
	if h := colHealth(sys, major); h.State != ColumnProbation {
		t.Fatalf("column not released after clean probes: %+v", h)
	}
	if sys.Area().QuarantineOverlaps(colRect) {
		t.Fatal("released column still masked")
	}
	cap := sys.Capacity()
	if cap.QuarantinedCLBs != 0 || cap.ProbationCLBs != sys.Device().Rows {
		t.Fatalf("capacity after release: %+v", cap)
	}
	if got := sys.Stats().QuarantinesReleased; got != 1 {
		t.Fatalf("QuarantinesReleased = %d, want 1", got)
	}

	// Probation is one-strike: a single scrub repair re-condemns.
	flaky.FlipBit(addr, 1, 3)
	if _, err := sys.Scrub(0); err != nil {
		t.Fatal(err)
	}
	if h := colHealth(sys, major); h.State != ColumnQuarantined {
		t.Fatalf("repair during probation did not re-condemn: %+v", h)
	}
	if !sys.Area().QuarantineOverlaps(colRect) {
		t.Fatal("re-condemned column not masked again")
	}

	// Release again, then earn back full health with clean scrub checks.
	for i := 0; i < 4 && colHealth(sys, major).State != ColumnProbation; i++ {
		if _, err := sys.Scrub(0); err != nil {
			t.Fatal(err)
		}
	}
	if h := colHealth(sys, major); h.State != ColumnProbation {
		t.Fatalf("column not re-released: %+v", h)
	}
	for i := 0; i < 8 && colHealth(sys, major).State != ColumnHealthy; i++ {
		if _, err := sys.Scrub(0); err != nil {
			t.Fatal(err)
		}
	}
	if h := colHealth(sys, major); h.State != ColumnHealthy {
		t.Fatalf("probation never cleared: %+v", h)
	}
	cap = sys.Capacity()
	if cap.QuarantinedCLBs != 0 || cap.ProbationCLBs != 0 {
		t.Fatalf("capacity after full recovery: %+v", cap)
	}
	if _, err := sys.Load(mkCounter("back"), fabric.Rect{Row: 0, Col: 10, H: 2, W: 2}); err != nil {
		t.Fatalf("load onto the recovered column: %v", err)
	}

	cancel()
	saw := map[EventKind]int{}
	for e := range events {
		saw[e.Kind]++
	}
	if saw[FrameQuarantined] == 0 || saw[ProbeFailed] != 1 || saw[QuarantineReleased] != 2 || saw[CapacityChanged] == 0 {
		t.Fatalf("lifecycle events: %v", saw)
	}
}

// TestStallWatchdog covers the watchdog's two modes. Without a retry policy
// a hung transport surfaces as a typed ErrPortStalled well before the stall
// clears, and the operation rolls back. With the retry ladder armed, every
// stall is absorbed by a compensated re-delivery, and the run stays
// bit-identical to an unstalled twin.
func TestStallWatchdog(t *testing.T) {
	t.Run("typed-failure", func(t *testing.T) {
		const stall = 400 * time.Millisecond
		sys, flaky := faultSystem(t, 13, WithStallTimeout(30*time.Millisecond))
		home := fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}
		if _, err := sys.Load(mkCounter("c1"), home); err != nil {
			t.Fatal(err)
		}
		flaky.SetStall(stall)
		start := time.Now()
		err := sys.Move("c1", fabric.Rect{Row: 4, Col: 4, H: 2, W: 2})
		elapsed := time.Since(start)
		if !errors.Is(err, ErrPortStalled) {
			t.Fatalf("move over a stalled port: %v, want ErrPortStalled", err)
		}
		if elapsed >= stall {
			t.Fatalf("watchdog did not preempt the stall: took %v", elapsed)
		}
		if r, ok := sys.Region("c1"); !ok || r != home {
			t.Fatalf("failed move not rolled back: region %v, ok=%v", r, ok)
		}
		// Clear the stall, reap the abandoned awaiter, and show the system
		// recovers to full service.
		flaky.SetStall(0)
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sys.Move("c1", fabric.Rect{Row: 4, Col: 4, H: 2, W: 2}); err != nil {
			t.Fatalf("move after the stall cleared: %v", err)
		}
	})

	t.Run("retry-bit-identical", func(t *testing.T) {
		retry := WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 1})
		clean, _ := faultSystem(t, 7, retry)
		crashScript(t, clean)
		want := maskFaultStats(captureState(clean))

		sys, flaky := faultSystem(t, 7, retry, WithStallTimeout(20*time.Millisecond))
		flaky.SetStall(60 * time.Millisecond)
		crashScript(t, sys) // every op must survive via watchdog + retry
		flaky.SetStall(0)
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		st := sys.Stats()
		if st.RetriesExhausted != 0 {
			t.Fatalf("stalls exhausted retries: %+v", st)
		}
		if st.FaultsDetected == 0 {
			t.Fatal("no stall was ever detected; the watchdog tested nothing")
		}
		if diffs := diffStates(maskFaultStats(captureState(sys)), want); len(diffs) > 0 {
			t.Fatalf("stalled run diverges from unstalled twin: %s", diffs[0])
		}
	})
}

// TestDegradedAdmission: once quarantine pushes healthy capacity below the
// policy watermark, new loads — direct or planned — fail fast with a typed
// ErrDegraded while moves of resident designs still work; releasing the
// quarantined columns restores admission.
func TestDegradedAdmission(t *testing.T) {
	pol := HealthPolicy{
		Alpha:           0.5,
		SuspectAbove:    0.25,
		ProbesToRelease: 1,
		DegradedBelow:   0.9,
	}
	sys, flaky := faultSystem(t, 17,
		WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 1}),
		WithHealthPolicy(pol))
	events, cancel := sys.Subscribe(256)
	defer cancel()

	if _, err := sys.Load(mkCounter("vic"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	condemnColumns(t, sys.Device(), flaky, 0, 1)
	if err := sys.Move("vic", fabric.Rect{Row: 4, Col: 0, H: 2, W: 2}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("move across condemned columns: %v, want ErrRetriesExhausted", err)
	}
	total := sys.Device().Rows * sys.Device().Cols
	cap := sys.Capacity()
	if cap.QuarantinedCLBs != 2*sys.Device().Rows || cap.HealthyCLBs != total-cap.QuarantinedCLBs {
		t.Fatalf("capacity census after quarantine: %+v", cap)
	}
	if sys.Stats().ColumnsSuspected == 0 {
		t.Fatalf("fault evidence never marked a column suspect: %+v", sys.Stats())
	}

	// 80/96 healthy is below the 90% watermark: loads are refused typed.
	if _, err := sys.Load(mkCounter("new"), fabric.Rect{}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("load in degraded mode: %v, want ErrDegraded", err)
	}
	err := sys.Plan().Load(mkCounter("new"), fabric.Rect{Row: 0, Col: 4, H: 2, W: 2}).Commit()
	if !errors.Is(err, ErrPlanInvalid) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("planned load in degraded mode: %v, want ErrPlanInvalid wrapping ErrDegraded", err)
	}
	// Resident designs stay fully manageable: only ADDING load is gated.
	if err := sys.Plan().Move("vic", fabric.Rect{Row: 0, Col: 6, H: 2, W: 2}).Commit(); err != nil {
		t.Fatalf("planned move in degraded mode: %v", err)
	}
	if err := sys.Move("vic", fabric.Rect{Row: 4, Col: 6, H: 2, W: 2}); err != nil {
		t.Fatalf("move in degraded mode: %v", err)
	}

	// Heal the memory; one clean probe per column releases both, restoring
	// capacity above the watermark — admission resumes.
	for _, c := range []int{0, 1} {
		major := sys.Device().MajorOfArrayCol(c)
		col, _ := sys.Device().ColumnByMajor(major)
		for minor := 0; minor < col.Frames; minor++ {
			flaky.HealFrames(fabric.FrameAddr{Major: major, Minor: minor})
		}
	}
	if _, err := sys.Scrub(0); err != nil {
		t.Fatal(err)
	}
	cap = sys.Capacity()
	if cap.QuarantinedCLBs != 0 || cap.ProbationCLBs != 2*sys.Device().Rows {
		t.Fatalf("capacity after release: %+v", cap)
	}
	if _, err := sys.Load(mkCounter("new"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatalf("load after capacity recovered: %v", err)
	}

	cancel()
	saw := map[EventKind]int{}
	for e := range events {
		saw[e.Kind]++
	}
	for _, k := range []EventKind{FrameSuspect, FrameQuarantined, QuarantineReleased, CapacityChanged} {
		if saw[k] == 0 {
			t.Errorf("event %v never published (saw %v)", k, saw)
		}
	}
}

// TestJournalCompactCarriesHealth: compacting a journal must preserve the
// health ledger alongside the quarantine mask, so a recovery from the
// compacted file restores the exact column states.
func TestJournalCompactCarriesHealth(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	pol := HealthPolicy{CondemnRepairs: 2}
	sys, flaky := faultSystem(t, 29, WithJournal(jpath), WithHealthPolicy(pol))

	if _, err := sys.Load(mkCounter("occ"), fabric.Rect{Row: 6, Col: 10, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unload("occ"); err != nil {
		t.Fatal(err)
	}
	major := sys.Device().MajorOfArrayCol(11)
	addr := ownedMinor(t, sys, major)
	for i := 0; i < pol.CondemnRepairs; i++ {
		flaky.FlipBit(addr, 1, 3)
		if _, err := sys.Scrub(0); err != nil {
			t.Fatal(err)
		}
	}
	if st := colHealth(sys, major).State; st != ColumnQuarantined {
		t.Fatalf("setup never condemned the column: %v", st)
	}
	wantHealth := sys.Health()
	wantQuar := sys.Stats().FramesQuarantined

	if _, err := journal.Compact(jpath); err != nil {
		t.Fatalf("compacting the journal: %v", err)
	}
	rec, rep, err := Recover(deviceFromFrames(t, dumpFrames(sys.dev)), jpath, WithHealthPolicy(pol))
	if err != nil {
		t.Fatalf("recover from compacted journal: %v", err)
	}
	if rep.Action != "clean" {
		t.Fatalf("action = %q, want clean", rep.Action)
	}
	colRect := fabric.Rect{Row: 0, Col: 11, H: sys.Device().Rows, W: 1}
	if !rec.Area().QuarantineOverlaps(colRect) {
		t.Fatal("compaction lost the quarantine mask")
	}
	if got := rec.Health(); !reflect.DeepEqual(got, wantHealth) {
		t.Fatalf("recovered health ledger:\n got %+v\nwant %+v", got, wantHealth)
	}
	if got := rec.Stats().FramesQuarantined; got != wantQuar {
		t.Fatalf("recovered FramesQuarantined = %d, want %d", got, wantQuar)
	}
	if _, err := rec.Load(mkCounter("x"), fabric.Rect{Row: 0, Col: 10, H: 2, W: 2}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("load over the recovered mask: %v, want ErrQuarantined", err)
	}
}

// TestCloseUnderLoadNoGoroutineLeak: Close must stop the background
// scrubber, reap an awaiter the stall watchdog abandoned, and drain the
// in-flight stream — no goroutine the system spawned survives it. Run with
// -race.
func TestCloseUnderLoadNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys, flaky := faultSystem(t, 37,
		WithScrubber(100*time.Microsecond, 8),
		WithStallTimeout(20*time.Millisecond))
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	flaky.SetStall(150 * time.Millisecond)
	// The stalled move abandons an awaiter goroutine behind the watchdog
	// (no retry policy is armed, so the op fails typed and rolls back).
	if err := sys.Move("c1", fabric.Rect{Row: 4, Col: 4, H: 2, W: 2}); !errors.Is(err, ErrPortStalled) {
		t.Fatalf("move over a stalled port: %v, want ErrPortStalled", err)
	}
	flaky.SetStall(0)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sys.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// maskSoakStats additionally zeroes every counter the self-healing layer
// owns, on top of the fault-layer mask: the chaos soak asserts that all
// maintenance traffic — retries, scrubs, probes, quarantine churn — is
// compensated out, leaving the foreground accounting bit-identical to a
// fault-free twin's.
func maskSoakStats(st hostState) hostState {
	st = maskFaultStats(st)
	st.stats.RetriesExhausted = 0
	st.stats.FramesQuarantined = 0
	st.stats.DesignsEvacuated = 0
	st.stats.ScrubChecked = 0
	st.stats.ScrubRepairs = 0
	st.stats.ScrubSeconds = 0
	st.stats.ColumnsSuspected = 0
	st.stats.Probes = 0
	st.stats.ProbeFailures = 0
	st.stats.ProbeSeconds = 0
	st.stats.QuarantinesReleased = 0
	return st
}

// soakScript is the fixed foreground workout both chaos-soak twins run: own
// the far-east column's frames, then rounds of moves (direct, staged and
// planned) followed by a full defragmentation. The at hook fires between
// rounds; the faulty twin uses it to inject faults and wait for the health
// lifecycle to converge while no foreground operation is in flight, which
// keeps the foreground delivery schedule identical across twins.
func soakScript(t *testing.T, s *System, rounds int, at func(tag string)) {
	t.Helper()
	if at == nil {
		at = func(string) {}
	}
	if _, err := s.Load(mkCounter("occ"), fabric.Rect{Row: 6, Col: 10, H: 2, W: 2}); err != nil {
		t.Fatalf("soak: own far-east column: %v", err)
	}
	if err := s.Unload("occ"); err != nil {
		t.Fatalf("soak: free far-east column: %v", err)
	}
	loads := []struct {
		name string
		r    fabric.Rect
	}{
		{"a", fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}},
		{"b", fabric.Rect{Row: 0, Col: 4, H: 2, W: 2}},
		{"c", fabric.Rect{Row: 4, Col: 0, H: 2, W: 2}},
	}
	for _, l := range loads {
		if _, err := s.Load(mkCounter(l.name), l.r); err != nil {
			t.Fatalf("soak: load %s: %v", l.name, err)
		}
	}
	for r := 0; r < rounds; r++ {
		// Each round starts from a west-packed layout (the initial loads,
		// then each defragmentation), so the eastern scatter targets below
		// (columns 6-9; column 10-11 stays free so the quarantine there
		// never forces an evacuation) are always clear, and the staged
		// move's hop box (rows 4-7, columns 6-9) holds no other design.
		if err := s.Move("a", fabric.Rect{Row: 0, Col: 6, H: 2, W: 2}); err != nil {
			t.Fatalf("soak round %d: move a: %v", r, err)
		}
		if err := s.Move("b", fabric.Rect{Row: 4, Col: 6, H: 2, W: 2}); err != nil {
			t.Fatalf("soak round %d: move b: %v", r, err)
		}
		if err := s.Move("c", fabric.Rect{Row: 2, Col: 8, H: 2, W: 2}); err != nil {
			t.Fatalf("soak round %d: move c: %v", r, err)
		}
		if err := s.MoveStaged("b", fabric.Rect{Row: 6, Col: 8, H: 2, W: 2}, 2); err != nil {
			t.Fatalf("soak round %d: staged move b: %v", r, err)
		}
		if err := s.Plan().Move("c", fabric.Rect{Row: 2, Col: 2, H: 2, W: 2}).Commit(); err != nil {
			t.Fatalf("soak round %d: planned move c: %v", r, err)
		}
		if _, err := s.Defragment(DefragPolicy{}); err != nil {
			t.Fatalf("soak round %d: defragment: %v", r, err)
		}
		at(fmt.Sprintf("round-%d", r))
	}
}

// TestChaosSoakSelfHealing is the headline chaos property: a journaled
// system under a background scrubber runs a fixed foreground workout while
// a fault plan repeatedly corrupts one free column — driving it through
// suspect-free preemptive condemnation, failed and clean probes, release
// and probation — a crash capture taken at the condemnation seal is
// recovered CONCURRENTLY with the ongoing soak, and after the fault plan
// drains the system must converge back to full healthy capacity with its
// frames, book-keeping and cycle accounting bit-identical to a fault-free
// twin's. Run with -race.
func TestChaosSoakSelfHealing(t *testing.T) {
	runChaosSoak(t)
}

// TestChaosSoakCompressed is the same soak with delta/MFWR stream encoding
// on (both twins): scrubber repairs, probe traffic and retry re-delivery all
// ship compressed streams, and the converged system must still be
// bit-identical to its fault-free twin. The run also asserts compression
// actually engaged — the foreground workout must ship fewer words than its
// uncompressed equivalent would have.
func TestChaosSoakCompressed(t *testing.T) {
	sys := runChaosSoak(t, WithCompression())
	tr := sys.Traffic()
	if !sys.Port().(bitstream.CompressPort).Compressed() {
		t.Fatal("port is not in compressed mode")
	}
	if tr.WordsShifted == 0 || tr.WordsShifted >= tr.FullWords {
		t.Fatalf("compression never engaged: %+v", tr)
	}
}

// runChaosSoak is the soak body, parameterised with extra options applied to
// BOTH twins; it returns the soaked (faulty) system for extra assertions.
func runChaosSoak(t *testing.T, extra ...Option) *System {
	// ProbesToRelease is deliberately large: the soak observes the
	// quarantined state from a polling goroutine, and with a small streak
	// the scrubber (one probe per 200µs tick) can condemn, probe clean and
	// release a column inside a single poll interval — the test would miss
	// the whole window. ~400 probes ≈ 80ms of guaranteed visibility without
	// changing the lifecycle the test exercises.
	pol := HealthPolicy{
		Alpha:           0.5,
		SuspectAbove:    0.25,
		CondemnRepairs:  2,
		ProbesToRelease: 400,
		ProbationChecks: 2,
	}
	retry := WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 2})
	rounds := 4
	if testing.Short() {
		rounds = 3
	}
	dir := t.TempDir()

	// The fault-free twin fixes the expected end state (and the owned-frame
	// set of the far-east column, which is deterministic across twins).
	clean, err := New(append([]Option{WithDevice(fabric.TestDevice),
		WithJournal(filepath.Join(dir, "twin.journal")), retry, WithHealthPolicy(pol)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	soakScript(t, clean, rounds, nil)
	want := maskSoakStats(captureState(clean))
	major := clean.Device().MajorOfArrayCol(11)
	addr := ownedMinor(t, clean, major)
	colRect := fabric.Rect{Row: 0, Col: 11, H: clean.Device().Rows, W: 1}

	// The faulty twin: background scrubber + journal + delivered-frame
	// mirror + a crash capture armed at the first commit that seals the
	// quarantine mask.
	jpath := filepath.Join(dir, "op.journal")
	sys, flaky := faultSystem(t, 47, append([]Option{WithJournal(jpath), retry, WithHealthPolicy(pol),
		WithScrubber(200*time.Microsecond, 64)}, extra...)...)
	mirror := map[fabric.FrameAddr][]uint32{}
	sys.onDelivered = func(updates []bitstream.FrameUpdate) {
		for _, u := range updates {
			mirror[u.Addr] = append([]uint32(nil), u.Data...)
		}
	}
	var capMu sync.Mutex
	var capture *crashPoint
	sys.crashHook = func(stage string) {
		if stage != "commit" || !sys.area.QuarantineOverlaps(colRect) {
			return
		}
		capMu.Lock()
		defer capMu.Unlock()
		if capture != nil {
			return
		}
		data, err := os.ReadFile(jpath)
		if err != nil {
			return
		}
		if off := sys.jrnl.j.Offset(); int64(len(data)) > off {
			data = data[:off]
		}
		capture = &crashPoint{stage: stage, jdata: append([]byte(nil), data...), frames: cloneFrames(mirror)}
	}

	recErr := make(chan error, 1)
	recovering := false
	at := func(tag string) {
		switch tag {
		case "round-0":
			// First silent fault: the scrubber finds and repairs it.
			flaky.FlipBit(addr, 1, 3)
			waitFor(t, 20*time.Second, func() bool { return sys.Stats().ScrubRepairs >= 1 }, "first scrub repair")
		case "round-1":
			// Second repair of the same frame condemns the column; a crash
			// capture of that seal is recovered concurrently with the rest
			// of the soak; a probe-failure window exercises the streak
			// reset; then the fault plan drains and the column is released.
			flaky.FlipBit(addr, 1, 3)
			waitFor(t, 20*time.Second, func() bool { return sys.Capacity().QuarantinedCLBs == sys.Device().Rows }, "preemptive quarantine")
			capMu.Lock()
			cp := capture
			capMu.Unlock()
			if cp == nil {
				t.Fatal("no crash capture at the quarantine seal")
			}
			recovering = true
			go func() {
				recErr <- recoverSoakCapture(dir, cp, pol, colRect, major)
			}()
			flaky.FailFrames(addr)
			waitFor(t, 20*time.Second, func() bool { return sys.Stats().ProbeFailures >= 1 }, "probe failure")
			flaky.HealFrames(addr)
			waitFor(t, 20*time.Second, func() bool { return sys.Capacity().QuarantinedCLBs == 0 }, "quarantine release")
		}
	}
	soakScript(t, sys, rounds, at)

	if recovering {
		if err := <-recErr; err != nil {
			t.Fatalf("mid-soak recovery: %v", err)
		}
	} else {
		t.Fatal("fault phases never ran")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	cap := sys.Capacity()
	if cap.QuarantinedCLBs != 0 {
		t.Fatalf("soak did not converge to full capacity: %+v", cap)
	}
	if h := colHealth(sys, major); h.State != ColumnProbation && h.State != ColumnHealthy {
		t.Fatalf("column never came back into service: %+v", h)
	}
	st := sys.Stats()
	if st.ScrubRepairs < 2 || st.Probes < 2 || st.ProbeFailures < 1 || st.QuarantinesReleased < 1 {
		t.Fatalf("soak exercised less than the full lifecycle: %+v", st)
	}
	if diffs := diffStates(maskSoakStats(captureState(sys)), want); len(diffs) > 0 {
		t.Fatalf("soaked system diverges from fault-free twin (%d diffs): %s", len(diffs), diffs[0])
	}
	return sys
}

// recoverSoakCapture replays the mid-soak crash capture on a rebuilt device
// (goroutine-safe: errors are returned, not fataled).
func recoverSoakCapture(dir string, cp *crashPoint, pol HealthPolicy, colRect fabric.Rect, major int) error {
	dev := fabric.NewDevice(fabric.TestDevice)
	for a, w := range cp.frames {
		if err := dev.WriteFrame(a.Major, a.Minor, w); err != nil {
			return fmt.Errorf("rebuilding frame %v: %w", a, err)
		}
	}
	path := filepath.Join(dir, "crash.journal")
	if err := os.WriteFile(path, cp.jdata, 0o644); err != nil {
		return err
	}
	rec, rep, err := Recover(dev, path, WithHealthPolicy(pol))
	if err != nil {
		return err
	}
	if rep.Action != "clean" {
		return fmt.Errorf("recovery action %q, want clean (capture was a sealed commit)", rep.Action)
	}
	if !rec.Area().QuarantineOverlaps(colRect) {
		return fmt.Errorf("recovered system lost the quarantine mask")
	}
	if st := colHealth(rec, major).State; st != ColumnQuarantined {
		return fmt.Errorf("recovered health ledger has column F%d %v, want quarantined", major, st)
	}
	return rec.Close()
}
